#include "dataset/generator.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace laminar::dataset {
namespace {

/// Renders one family variant into a PE class source.
PeExample RenderVariant(const FamilySpec& family, int group, int64_t id,
                        size_t variant, Rng& rng,
                        const DatasetConfig& config) {
  PeExample ex;
  ex.id = id;
  ex.group = group;
  ex.family_key = std::string(family.key);

  // Unique, human-plausible class name: stem + suffix + variant ordinal.
  std::string suffix(rng.Choice(ClassSuffixPool()));
  ex.name = std::string(family.class_base) + suffix +
            (variant > 0 ? std::to_string(variant) : "");

  ex.description = std::string(family.description);
  ex.query = std::string(rng.NextBool() ? family.paraphrase_a
                                        : family.paraphrase_b);

  // Identifier choices (independent per variant — the rename noise).
  std::string in_name(rng.Choice(InputNamePool()));
  std::string a_name(rng.Choice(LocalNamePoolA()));
  std::string b_name(rng.Choice(LocalNamePoolB()));
  std::string c_name(rng.Choice(LocalNamePoolC()));
  // Guard against collisions across pools.
  if (a_name == b_name) b_name += "2";
  if (c_name == a_name || c_name == b_name) c_name += "3";
  std::string n1 = std::to_string(rng.NextInt(2, 5));
  std::string n2 = std::to_string(rng.NextInt(50, 200));
  std::string f1 = std::to_string(rng.NextInt(1, 9)) + ".5";

  std::string body(family.body);
  body = strings::ReplaceAll(body, "$IN", in_name);
  body = strings::ReplaceAll(body, "$A", a_name);
  body = strings::ReplaceAll(body, "$B", b_name);
  body = strings::ReplaceAll(body, "$C", c_name);
  body = strings::ReplaceAll(body, "$N1", n1);
  body = strings::ReplaceAll(body, "$N2", n2);
  body = strings::ReplaceAll(body, "$F", f1);

  // Structure noise. Variants within a group model *independent
  // implementations* of the same task (CodeSearchNet groups are not copies
  // of one function): docstrings are differently phrased, and each variant
  // carries its own incidental statements, which breaks literal token
  // n-grams without changing the semantics or the core structure.
  bool with_docstring = rng.NextBool(config.docstring_probability);
  bool with_counter = rng.NextBool(config.noise_probability);
  std::string docstring;
  switch (rng.NextBelow(3)) {
    case 0: docstring = std::string(family.description); break;
    case 1: docstring = std::string(family.paraphrase_a) + "."; break;
    default: docstring = std::string(family.paraphrase_b) + "."; break;
  }

  // Incidental per-variant statements at the top of _process.
  static constexpr std::string_view kNoisePool[] = {
      "$D = 0\n",
      "if $IN is None:\n    return None\n",
      "$D = str($IN)\n",
      "$E = []\n",
      "$D = len(str($IN)) + $N9\n",
      "$D = repr($IN)[:$N9]\n",
      "$E = {}\n",
      "$D = isinstance($IN, str)\n",
  };
  std::string noise;
  // At most one incidental statement: enough to break token n-grams between
  // variants without letting validation boilerplate dominate short bodies
  // under heavy code dropping.
  if (rng.NextBool(0.6)) {
    noise += kNoisePool[rng.NextBelow(std::size(kNoisePool))];
  }
  noise = strings::ReplaceAll(noise, "$IN", in_name);
  noise = strings::ReplaceAll(noise, "$D", "aux" + std::to_string(rng.NextInt(0, 99)));
  noise = strings::ReplaceAll(noise, "$E", "scratch" + std::to_string(rng.NextInt(0, 99)));
  noise = strings::ReplaceAll(noise, "$N9", std::to_string(rng.NextInt(3, 40)));

  std::string code;
  code += "class " + ex.name + "(IterativePE):\n";
  if (with_docstring) {
    code += "    \"\"\"" + docstring + "\"\"\"\n";
  }
  code += "    def __init__(self):\n";
  code += "        IterativePE.__init__(self)\n";
  if (with_counter) {
    code += "        self.seen = 0\n";
  }
  code += "    def _process(self, " + in_name + "):\n";
  if (with_counter) {
    code += "        self.seen = self.seen + 1\n";
  }
  for (const std::string& line : strings::SplitLines(noise)) {
    code += "        " + line + "\n";
  }
  for (const std::string& line : strings::SplitLines(body)) {
    code += "        " + line + "\n";
  }
  ex.pe_code = std::move(code);
  return ex;
}

}  // namespace

PeStream::PeStream(const DatasetConfig& config)
    : config_(config), rng_(config.seed), family_rng_(0) {
  const std::vector<FamilySpec>& table = Families();
  families_ = config_.families == 0
                  ? table.size()
                  : std::min(config_.families, table.size());
  if (config_.variants_per_family == 0) family_ = families_;  // empty stream
}

bool PeStream::Next(PeExample* out) {
  if (family_ >= families_) return false;
  if (variant_ == 0) family_rng_ = rng_.Fork(family_ + 1);
  *out = RenderVariant(Families()[family_], static_cast<int>(family_),
                       next_id_++, variant_, family_rng_, config_);
  if (++variant_ >= config_.variants_per_family) {
    variant_ = 0;
    ++family_;
  }
  return true;
}

CodeSearchNetPeDataset CodeSearchNetPeDataset::Generate(
    const DatasetConfig& config) {
  CodeSearchNetPeDataset ds;
  PeStream stream(config);
  ds.family_count_ = stream.family_count();
  ds.examples_.reserve(stream.total());
  PeExample ex;
  while (stream.Next(&ex)) {
    ds.groups_[ex.group].push_back(ex.id);
    ds.examples_.push_back(std::move(ex));
  }
  return ds;
}

const std::vector<int64_t>& CodeSearchNetPeDataset::GroupMembers(
    int group) const {
  static const std::vector<int64_t> kEmpty;
  auto it = groups_.find(group);
  return it == groups_.end() ? kEmpty : it->second;
}

std::string DropCode(const std::string& pe_code, double fraction,
                     DropMode mode, uint64_t seed) {
  if (fraction <= 0.0) return pe_code;
  std::vector<std::string> lines = strings::SplitLines(pe_code);
  // Locate the _process body: everything after the "def _process" line.
  size_t body_start = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].find("def _process") != std::string::npos) {
      body_start = i + 1;
      break;
    }
  }
  if (body_start == 0 || body_start >= lines.size()) {
    // No recognizable body; drop from the overall tail instead.
    body_start = std::min<size_t>(1, lines.size());
  }
  size_t body_len = lines.size() - body_start;
  size_t keep = static_cast<size_t>(
      static_cast<double>(body_len) * (1.0 - fraction) + 0.5);
  if (keep >= body_len) {
    // Guarantee the drop removes at least one line when asked to.
    keep = body_len > 0 ? body_len - 1 : 0;
  }

  std::vector<std::string> out(lines.begin(),
                               lines.begin() + static_cast<std::ptrdiff_t>(body_start));
  if (mode == DropMode::kTail) {
    for (size_t i = 0; i < keep; ++i) out.push_back(lines[body_start + i]);
  } else {
    // Random drop: choose `keep` body line indexes, preserve order.
    std::vector<size_t> idx(body_len);
    for (size_t i = 0; i < body_len; ++i) idx[i] = i;
    Rng rng(seed);
    rng.Shuffle(idx);
    idx.resize(keep);
    std::sort(idx.begin(), idx.end());
    for (size_t i : idx) out.push_back(lines[body_start + i]);
  }
  return strings::Join(out, "\n") + (out.empty() ? "" : "\n");
}

}  // namespace laminar::dataset
