#include "dataset/families.hpp"

namespace laminar::dataset {

const std::vector<FamilySpec>& Families() {
  static const std::vector<FamilySpec> kFamilies = {
      {"is_prime", "IsPrime",
       "Checks whether a number is prime and returns it if so.",
       "a pe that determines if the given integer is a prime number",
       "test primality of a number",
       "if $IN < 2:\n"
       "    return None\n"
       "for $A in range(2, $IN):\n"
       "    if $IN % $A == 0:\n"
       "        return None\n"
       "return $IN\n"},

      {"fibonacci", "Fibonacci",
       "Computes the n-th Fibonacci number iteratively.",
       "calculate fibonacci numbers for an index",
       "a pe returning the fibonacci sequence value",
       "$A = 0\n"
       "$B = 1\n"
       "for $C in range($IN):\n"
       "    $A, $B = $B, $A + $B\n"
       "return $A\n"},

      {"factorial", "Factorial",
       "Computes the factorial of a non-negative integer.",
       "a pe that multiplies all integers up to n",
       "compute n factorial of the input",
       "$A = 1\n"
       "for $B in range(2, $IN + 1):\n"
       "    $A = $A * $B\n"
       "return $A\n"},

      {"gcd", "GreatestCommonDivisor",
       "Computes the greatest common divisor of two numbers.",
       "find the gcd of a pair of integers",
       "a pe computing the largest common factor",
       "$A = $IN[0]\n"
       "$B = $IN[1]\n"
       "while $B != 0:\n"
       "    $A, $B = $B, $A % $B\n"
       "return $A\n"},

      {"reverse_string", "ReverseString",
       "Reverses the characters of a string.",
       "a pe that returns the input text backwards",
       "reverse the order of characters in text",
       "$A = ''\n"
       "for $B in $IN:\n"
       "    $A = $B + $A\n"
       "return $A\n"},

      {"palindrome", "PalindromeCheck",
       "Checks whether a string reads the same forwards and backwards.",
       "detect if the given text is a palindrome",
       "a pe testing for palindromic strings",
       "$A = $IN.lower()\n"
       "$B = $A[::-1]\n"
       "if $A == $B:\n"
       "    return $IN\n"
       "return None\n"},

      {"count_vowels", "CountVowels",
       "Counts the vowels appearing in a string.",
       "a pe that counts vowel characters in text",
       "how many vowels does the input contain",
       "$A = 0\n"
       "for $B in $IN.lower():\n"
       "    if $B in 'aeiou':\n"
       "        $A = $A + 1\n"
       "return $A\n"},

      {"word_count", "WordCount",
       "Counts word frequencies in a text and returns a dictionary.",
       "a pe building a word frequency map from text",
       "count how often each word occurs",
       "$A = {}\n"
       "for $B in $IN.split():\n"
       "    $C = $B.lower()\n"
       "    $A[$C] = $A.get($C, 0) + 1\n"
       "return $A\n"},

      {"find_max", "FindMaximum",
       "Finds the largest element of a numeric sequence.",
       "a pe returning the maximum value of a list",
       "find the biggest number in the input",
       "$A = $IN[0]\n"
       "for $B in $IN:\n"
       "    if $B > $A:\n"
       "        $A = $B\n"
       "return $A\n"},

      {"find_min", "FindMinimum",
       "Finds the smallest element of a numeric sequence.",
       "a pe returning the minimum value of a list",
       "find the smallest number in the input",
       "$A = $IN[0]\n"
       "for $B in $IN:\n"
       "    if $B < $A:\n"
       "        $A = $B\n"
       "return $A\n"},

      {"mean_value", "MeanValue",
       "Computes the arithmetic mean of a list of numbers.",
       "a pe that averages the values of a sequence",
       "calculate the mean of numeric data",
       "$A = 0.0\n"
       "for $B in $IN:\n"
       "    $A = $A + $B\n"
       "return $A / len($IN)\n"},

      {"median_value", "MedianValue",
       "Computes the median of a list of numbers.",
       "a pe finding the middle value of sorted data",
       "calculate the median of a numeric list",
       "$A = sorted($IN)\n"
       "$B = len($A)\n"
       "if $B % 2 == 1:\n"
       "    return $A[$B // 2]\n"
       "return ($A[$B // 2 - 1] + $A[$B // 2]) / 2.0\n"},

      {"variance", "Variance",
       "Computes the population variance of a numeric list.",
       "a pe measuring the spread of values",
       "calculate variance of the numbers",
       "$A = sum($IN) / len($IN)\n"
       "$B = 0.0\n"
       "for $C in $IN:\n"
       "    $B = $B + ($C - $A) * ($C - $A)\n"
       "return $B / len($IN)\n"},

      {"binary_search", "BinarySearch",
       "Searches a sorted list for a target value and returns its index.",
       "a pe performing binary search over sorted data",
       "find the position of an element with bisection",
       "$A = 0\n"
       "$B = len($IN[0]) - 1\n"
       "while $A <= $B:\n"
       "    $C = ($A + $B) // 2\n"
       "    if $IN[0][$C] == $IN[1]:\n"
       "        return $C\n"
       "    if $IN[0][$C] < $IN[1]:\n"
       "        $A = $C + 1\n"
       "    else:\n"
       "        $B = $C - 1\n"
       "return -1\n"},

      {"bubble_sort", "BubbleSort",
       "Sorts a list of numbers in ascending order.",
       "a pe ordering values from smallest to largest",
       "sort the numeric input ascending",
       "$A = list($IN)\n"
       "for $B in range(len($A)):\n"
       "    for $C in range(len($A) - $B - 1):\n"
       "        if $A[$C] > $A[$C + 1]:\n"
       "            $A[$C], $A[$C + 1] = $A[$C + 1], $A[$C]\n"
       "return $A\n"},

      {"dedupe", "RemoveDuplicates",
       "Removes duplicate elements from a list while keeping order.",
       "a pe filtering out repeated items",
       "deduplicate the values of a sequence",
       "$A = []\n"
       "$B = set()\n"
       "for $C in $IN:\n"
       "    if $C not in $B:\n"
       "        $B.add($C)\n"
       "        $A.append($C)\n"
       "return $A\n"},

      {"normalize_minmax", "NormalizeData",
       "Normalizes numeric values to the range zero to one.",
       "a pe rescaling data with min max normalization",
       "normalize temperature records to unit range",
       "$A = min($IN)\n"
       "$B = max($IN)\n"
       "if $B == $A:\n"
       "    return [0.0 for $C in $IN]\n"
       "return [($C - $A) / ($B - $A) for $C in $IN]\n"},

      {"zscore_anomaly", "AnomalyDetection",
       "Detects anomalies in a numeric series using z scores.",
       "a pe that is able to detect anomalies",
       "flag outlier readings in sensor data",
       "$A = sum($IN) / len($IN)\n"
       "$B = (sum(($C - $A) * ($C - $A) for $C in $IN) / len($IN)) ** 0.5\n"
       "if $B == 0:\n"
       "    return []\n"
       "return [$C for $C in $IN if abs(($C - $A) / $B) > $N1]\n"},

      {"moving_average", "MovingAverage",
       "Computes a sliding window moving average over a series.",
       "a pe smoothing a time series with a rolling mean",
       "apply windowed averaging to streaming values",
       "$A = []\n"
       "for $B in range(len($IN) - $N1 + 1):\n"
       "    $C = sum($IN[$B:$B + $N1]) / float($N1)\n"
       "    $A.append($C)\n"
       "return $A\n"},

      {"temperature_convert", "TemperatureConvert",
       "Converts a temperature from celsius to fahrenheit.",
       "a pe translating celsius readings to fahrenheit",
       "convert degrees between temperature scales",
       "$A = $IN * 9.0 / 5.0 + 32.0\n"
       "return $A\n"},

      {"caesar_cipher", "CaesarCipher",
       "Encrypts text by shifting each letter a fixed amount.",
       "a pe applying a caesar shift cipher to text",
       "encode a message with letter rotation",
       "$A = ''\n"
       "for $B in $IN:\n"
       "    if $B.isalpha():\n"
       "        $C = ord($B.lower()) - ord('a')\n"
       "        $A = $A + chr(ord('a') + ($C + $N1) % 26)\n"
       "    else:\n"
       "        $A = $A + $B\n"
       "return $A\n"},

      {"flatten_list", "FlattenList",
       "Flattens a nested list one level deep.",
       "a pe merging nested lists into one",
       "flatten a list of lists into a single list",
       "$A = []\n"
       "for $B in $IN:\n"
       "    for $C in $B:\n"
       "        $A.append($C)\n"
       "return $A\n"},

      {"running_total", "RunningTotal",
       "Computes the cumulative sum of a numeric sequence.",
       "a pe producing prefix sums of the input",
       "accumulate a running total over values",
       "$A = []\n"
       "$B = 0\n"
       "for $C in $IN:\n"
       "    $B = $B + $C\n"
       "    $A.append($B)\n"
       "return $A\n"},

      {"clamp_values", "ClampValues",
       "Clamps every value of a list into a fixed interval.",
       "a pe limiting numbers to lower and upper bounds",
       "restrict readings into an allowed range",
       "$A = []\n"
       "for $B in $IN:\n"
       "    if $B < $N1:\n"
       "        $A.append($N1)\n"
       "    elif $B > $N2:\n"
       "        $A.append($N2)\n"
       "    else:\n"
       "        $A.append($B)\n"
       "return $A\n"},

      {"histogram", "Histogram",
       "Builds a histogram mapping each value to its frequency.",
       "a pe counting occurrences of every element",
       "build a frequency histogram of the data",
       "$A = {}\n"
       "for $B in $IN:\n"
       "    if $B in $A:\n"
       "        $A[$B] = $A[$B] + 1\n"
       "    else:\n"
       "        $A[$B] = 1\n"
       "return $A\n"},

      {"levenshtein", "EditDistance",
       "Computes the Levenshtein edit distance between two strings.",
       "a pe measuring string similarity by edits",
       "how many edits between two words",
       "$A = $IN[0]\n"
       "$B = $IN[1]\n"
       "$C = [[0] * (len($B) + 1) for _ in range(len($A) + 1)]\n"
       "for i in range(len($A) + 1):\n"
       "    $C[i][0] = i\n"
       "for j in range(len($B) + 1):\n"
       "    $C[0][j] = j\n"
       "for i in range(1, len($A) + 1):\n"
       "    for j in range(1, len($B) + 1):\n"
       "        cost = 0 if $A[i - 1] == $B[j - 1] else 1\n"
       "        $C[i][j] = min($C[i - 1][j] + 1, $C[i][j - 1] + 1, $C[i - 1][j - 1] + cost)\n"
       "return $C[len($A)][len($B)]\n"},

      {"stop_words", "StopWordFilter",
       "Removes common stop words from a text.",
       "a pe filtering stopwords out of sentences",
       "drop common english words from the input",
       "$A = {'the', 'a', 'an', 'of', 'to', 'and'}\n"
       "$B = []\n"
       "for $C in $IN.split():\n"
       "    if $C.lower() not in $A:\n"
       "        $B.append($C)\n"
       "return ' '.join($B)\n"},

      {"dot_product", "DotProduct",
       "Computes the dot product of two numeric vectors.",
       "a pe multiplying vectors element by element and summing",
       "inner product of two lists of numbers",
       "$A = 0.0\n"
       "for $B in range(len($IN[0])):\n"
       "    $A = $A + $IN[0][$B] * $IN[1][$B]\n"
       "return $A\n"},

      {"csv_parse", "CsvParse",
       "Parses a comma separated line into trimmed fields.",
       "a pe splitting csv rows into columns",
       "parse a comma delimited record",
       "$A = []\n"
       "for $B in $IN.split(','):\n"
       "    $A.append($B.strip())\n"
       "return $A\n"},

      {"email_valid", "EmailValidate",
       "Validates that a string looks like an email address.",
       "a pe checking email address format",
       "is the given text a valid email",
       "if '@' not in $IN:\n"
       "    return None\n"
       "$A = $IN.split('@')\n"
       "if len($A) != 2:\n"
       "    return None\n"
       "if '.' not in $A[1]:\n"
       "    return None\n"
       "return $IN\n"},
  };
  return kFamilies;
}

const std::vector<std::string_view>& InputNamePool() {
  static const std::vector<std::string_view> kPool = {
      "data", "value", "item", "record", "payload", "entry", "sample", "num"};
  return kPool;
}

const std::vector<std::string_view>& LocalNamePoolA() {
  static const std::vector<std::string_view> kPool = {
      "result", "out", "acc", "total", "res", "collected", "answer", "buf"};
  return kPool;
}

const std::vector<std::string_view>& LocalNamePoolB() {
  static const std::vector<std::string_view> kPool = {
      "cur", "tmp", "aux", "hold", "mid", "probe", "cursor", "mark"};
  return kPool;
}

const std::vector<std::string_view>& LocalNamePoolC() {
  static const std::vector<std::string_view> kPool = {
      "elem", "x", "entry2", "tok", "piece", "cell", "unit", "part"};
  return kPool;
}

const std::vector<std::string_view>& ClassSuffixPool() {
  static const std::vector<std::string_view> kPool = {
      "PE", "Node", "Step", "Stage", "Op", "Task", "Unit", "Worker"};
  return kPool;
}

}  // namespace laminar::dataset
