// String utilities shared by the lexer, search, summarizer and CLI layers.
//
// All functions are pure and allocation-honest: views in, owned strings out
// only where a new string is genuinely produced.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace laminar::strings {

/// Splits `text` on `sep` (single character). Empty fields are kept:
/// Split("a,,b", ',') -> {"a", "", "b"}. Split("", ',') -> {""}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits on any run of ASCII whitespace; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Splits `text` into lines on '\n'; a trailing newline does not produce a
/// final empty line. "\r" is stripped from line ends.
std::vector<std::string> SplitLines(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Case-insensitive substring test (ASCII); used by literal search.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Splits an identifier into lowercase words by snake_case, camelCase,
/// PascalCase and digit boundaries: "readHTTPResponse2" ->
/// {"read", "http", "response", "2"}; "num_workers" -> {"num", "workers"}.
/// Used by the CodeT5 summarizer and the text embedder.
std::vector<std::string> SplitIdentifier(std::string_view identifier);

/// Lowercased word tokens of free text: alphanumeric runs only.
/// "A PE that checks primes!" -> {"a", "pe", "that", "checks", "primes"}.
std::vector<std::string> WordTokens(std::string_view text);

/// printf-lite: formats with snprintf semantics into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders `n` with thousands separators ("1234567" -> "1,234,567").
std::string WithCommas(long long n);

/// True if `text` is a valid Python-style identifier ([A-Za-z_][A-Za-z0-9_]*).
bool IsIdentifier(std::string_view text);

}  // namespace laminar::strings
