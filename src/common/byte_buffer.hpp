// Endian-stable binary encoding helpers for the wire protocol (src/net).
//
// All integers are encoded little-endian regardless of host order so that
// captured frames compare byte-identical in tests on any platform.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace laminar {

/// Append-only encoder.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_ += static_cast<char>(v); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_ += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_ += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  /// Length-prefixed (u32) byte string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void PutRaw(std::string_view s) { buf_.append(s.data(), s.size()); }

  const std::string& data() const& { return buf_; }
  std::string Take() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked decoder over a borrowed view.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> GetU32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)])) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  Result<uint64_t> GetU64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)])) << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  Result<std::string> GetString() {
    Result<uint32_t> len = GetU32();
    if (!len.ok()) return len.status();
    if (pos_ + len.value() > data_.size()) return Truncated();
    std::string out(data_.substr(pos_, len.value()));
    pos_ += len.value();
    return out;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated() const {
    return Status::ParseError("truncated buffer at offset " + std::to_string(pos_));
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace laminar
