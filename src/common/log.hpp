// Minimal leveled, thread-safe logger. Laminar components log to stderr;
// tests set the level to kError to keep output clean. No non-const globals
// are exposed — the singleton state lives behind accessor functions.
#pragma once

#include <string>
#include <string_view>

namespace laminar::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default kWarn).
void SetLevel(Level level);
Level GetLevel();

/// Emits one line: "[LEVEL component] message".
void Write(Level level, std::string_view component, std::string_view message);

inline void Debug(std::string_view component, std::string_view message) {
  Write(Level::kDebug, component, message);
}
inline void Info(std::string_view component, std::string_view message) {
  Write(Level::kInfo, component, message);
}
inline void Warn(std::string_view component, std::string_view message) {
  Write(Level::kWarn, component, message);
}
inline void Error(std::string_view component, std::string_view message) {
  Write(Level::kError, component, message);
}

}  // namespace laminar::log
