// Blocking MPMC queue — the backbone of every asynchronous boundary in
// Laminar: stdout streaming from the execution engine (the paper's Flask
// "concurrent queue"), inter-PE channels in the multiprocessing mapping, and
// the dynamic mapping's worker feed.
//
// Semantics: unbounded by default (optionally bounded with blocking push);
// Close() wakes all waiters; Pop on a closed, drained queue returns nullopt.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace laminar {

template <typename T>
class ConcurrentQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit ConcurrentQueue(size_t capacity = 0) : capacity_(capacity) {}

  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  /// Blocks while the queue is full (bounded mode). Returns false if the
  /// queue was closed (item is dropped).
  bool Push(T item) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    {
      std::scoped_lock lock(mu_);
      if (closed_ || (capacity_ != 0 && items_.size() >= capacity_)) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Waits up to `timeout`; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After Close(), pushes fail and pops drain remaining items then return
  /// nullopt. Idempotent.
  void Close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace laminar
