// Deterministic pseudo-random generator for dataset synthesis and benches.
//
// Uses xoshiro-style state seeded via splitmix64. We avoid <random> engines
// in the corpus generator because their distributions are not guaranteed
// bit-identical across standard libraries, and our experiment tables must be
// reproducible everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "common/hashing.hpp"

namespace laminar {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x1a2b3c4d5e6f7788ULL) {
    state_[0] = hashing::SplitMix64(seed);
    state_[1] = hashing::SplitMix64(state_[0]);
  }

  /// Next raw 64 bits (xoroshiro128++).
  uint64_t NextU64() {
    uint64_t s0 = state_[0];
    uint64_t s1 = state_[1];
    uint64_t result = Rotl(s0 + s1, 17) + s0;
    s1 ^= s0;
    state_[0] = Rotl(s0, 49) ^ s1 ^ (s1 << 21);
    state_[1] = Rotl(s1, 28);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    // Debiased via rejection on the top range.
    uint64_t threshold = (0 - bound) % bound;
    while (true) {
      uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[NextBelow(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; lets parallel corpus shards stay
  /// deterministic regardless of generation order.
  Rng Fork(uint64_t salt) {
    return Rng(hashing::Combine(NextU64(), hashing::SplitMix64(salt)));
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[2];
};

}  // namespace laminar
