// laminar::Value — the dynamic datum that flows through workflows and wire
// protocols.
//
// dispel4py PEs exchange arbitrary Python objects; the registry stores JSON
// metadata; the client/server protocol carries JSON bodies. Value is the
// single JSON-isomorphic variant all three share: null, bool, int64, double,
// string, array, object (string-keyed, insertion-ordered for deterministic
// serialization).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace laminar {

class Value;

/// Insertion-ordered string->Value map. Determinism matters: serialized
/// objects are hashed (resource cache keys) and diffed in tests.
class ValueObject {
 public:
  Value& operator[](const std::string& key);
  const Value* Find(std::string_view key) const;
  Value* Find(std::string_view key);
  bool contains(std::string_view key) const { return Find(key) != nullptr; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void erase(std::string_view key);

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  friend bool operator==(const ValueObject& a, const ValueObject& b);

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

class Value {
 public:
  using Array = std::vector<Value>;
  using Object = ValueObject;

  Value() = default;  // null
  Value(std::nullptr_t) {}                                       // NOLINT
  Value(bool b) : data_(b) {}                                    // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}               // NOLINT
  Value(int64_t i) : data_(i) {}                                 // NOLINT
  Value(size_t i) : data_(static_cast<int64_t>(i)) {}            // NOLINT
  Value(double d) : data_(d) {}                                  // NOLINT
  Value(const char* s) : data_(std::string(s)) {}                // NOLINT
  Value(std::string s) : data_(std::move(s)) {}                  // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}           // NOLINT
  Value(Array a) : data_(std::move(a)) {}                        // NOLINT
  Value(Object o) : data_(std::move(o)) {}                       // NOLINT

  static Value MakeArray() { return Value(Array{}); }
  static Value MakeObject() { return Value(Object{}); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_array() const { return std::holds_alternative<Array>(data_); }
  bool is_object() const { return std::holds_alternative<Object>(data_); }

  bool as_bool(bool fallback = false) const;
  int64_t as_int(int64_t fallback = 0) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;  // empty string if not a string

  /// Array access; all return empty/fallback values on type mismatch so
  /// protocol handlers can be written without pre-checking every field.
  const Array& as_array() const;
  Array& mutable_array();  ///< converts to array if not already one
  void push_back(Value v);
  size_t size() const;

  /// Object access.
  const Object& as_object() const;
  Object& mutable_object();  ///< converts to object if not already one
  Value& operator[](const std::string& key) { return mutable_object()[key]; }
  /// Null constant if missing or not an object.
  const Value& at(std::string_view key) const;
  bool contains(std::string_view key) const;

  /// Typed field getters used pervasively by the server layer.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  double GetDouble(std::string_view key, double fallback = 0.0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

  /// Compact JSON encoding (no insignificant whitespace, keys in insertion
  /// order, UTF-8 passthrough, \uXXXX escapes for control characters).
  std::string ToJson() const;
  /// Pretty-printed JSON with 2-space indentation.
  std::string ToJsonPretty() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

}  // namespace laminar
