// JSON parsing into laminar::Value.
//
// The wire protocol, registry persistence and SPT-embedding storage
// ('sptEmbedding' column is JSON, per the paper's Fig. 6 schema) all parse
// through here. Strict-ish RFC 8259: rejects trailing garbage, accepts UTF-8
// passthrough, supports \uXXXX escapes (with surrogate pairs).
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "common/value.hpp"

namespace laminar::json {

/// Parses exactly one JSON document (plus surrounding whitespace).
Result<Value> Parse(std::string_view text);

}  // namespace laminar::json
