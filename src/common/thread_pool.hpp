// Fixed-size worker pool used by the serverless engine's function-instance
// pool and by bench drivers. Tasks are type-erased closures; Shutdown()
// drains the queue, Cancel() discards pending work.
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/concurrent_queue.hpp"

namespace laminar {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] {
        while (auto task = tasks_.Pop()) {
          (*task)();
        }
      });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false after shutdown.
  bool Submit(std::function<void()> task) {
    return tasks_.Push(std::move(task));
  }

  size_t size() const { return workers_.size(); }

  /// Stops accepting tasks, finishes queued ones, joins workers. Idempotent.
  void Shutdown() {
    tasks_.Close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  ConcurrentQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace laminar
