// Fixed-size worker pool used by the serverless engine's function-instance
// pool, the registry bulk-ingest path and bench drivers. Tasks are
// type-erased closures; Shutdown() drains the queue, Cancel() discards
// pending work. ParallelFor() layers a blocking fork-join loop on top for
// data-parallel work (bulk index builds, batch registration encodes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/concurrent_queue.hpp"

namespace laminar {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] {
        while (auto task = tasks_.Pop()) {
          (*task)();
        }
      });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false after shutdown.
  bool Submit(std::function<void()> task) {
    return tasks_.Push(std::move(task));
  }

  size_t size() const { return workers_.size(); }

  /// Stops accepting tasks, finishes queued ones, joins workers. Idempotent.
  void Shutdown() {
    tasks_.Close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  ConcurrentQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

/// Blocking fork-join loop: runs fn(0) .. fn(n-1) across `pool` and the
/// calling thread, returning once every call has finished. Indices are
/// claimed from a shared atomic counter, so uneven per-item cost balances
/// automatically. The caller always participates (a pool of K workers gives
/// up to K+1-way parallelism), which also means a null/shut-down/empty pool
/// degrades to a plain serial loop instead of deadlocking. `fn` must not
/// throw — helpers run it on pool threads with nowhere to propagate.
inline void ParallelFor(ThreadPool* pool, size_t n,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helper_count =
      pool == nullptr ? 0 : std::min(pool->size(), n - 1);
  if (helper_count == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> helpers_live{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<State>();
  auto drain = [state, n, &fn] {
    for (size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
         i < n; i = state->next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  for (size_t h = 0; h < helper_count; ++h) {
    state->helpers_live.fetch_add(1, std::memory_order_relaxed);
    // `fn` outlives the join below, so helpers may reference it directly.
    bool accepted = pool->Submit([state, drain] {
      drain();
      {
        std::scoped_lock lock(state->mu);
        state->helpers_live.fetch_sub(1, std::memory_order_relaxed);
      }
      state->done.notify_one();
    });
    if (!accepted) {
      state->helpers_live.fetch_sub(1, std::memory_order_relaxed);
      break;  // pool shut down; the caller covers the remaining items
    }
  }
  drain();
  std::unique_lock lock(state->mu);
  state->done.wait(lock, [&] {
    return state->helpers_live.load(std::memory_order_relaxed) == 0;
  });
}

}  // namespace laminar
