// Time utilities: monotonic stopwatch for benches, and a calibrated
// busy-work spinner used to model CPU-bound PE work deterministically
// (sleep-based "work" under-reports scheduling effects the mapping benches
// want to show).
#pragma once

#include <chrono>
#include <cstdint>

namespace laminar {

/// Microseconds since an arbitrary monotonic epoch.
inline int64_t NowMicros() {
  using namespace std::chrono;
  return duration_cast<microseconds>(steady_clock::now().time_since_epoch())
      .count();
}

/// Milliseconds since the Unix epoch (wall clock). Used where a timestamp
/// must be meaningful across processes — e.g. WAL records carry their append
/// time so a replica can report replication lag in milliseconds.
inline int64_t NowWallMillis() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

/// Burns roughly `iters` iterations of integer work; the result is returned
/// so the optimizer cannot elide the loop. Used by CPU-bound example PEs.
inline uint64_t BusyWork(uint64_t iters) {
  uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (uint64_t i = 0; i < iters; ++i) {
    acc ^= acc << 13;
    acc ^= acc >> 7;
    acc ^= acc << 17;
  }
  return acc;
}

}  // namespace laminar
