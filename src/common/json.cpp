#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>

namespace laminar::json {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    SkipWs();
    Result<Value> v = ParseValue(0);
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status FailStatus(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }
  Result<Value> Fail(std::string msg) const { return FailStatus(std::move(msg)); }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (Eof()) return Fail("unexpected end of input");
    char c = Peek();
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return Value(std::move(s.value()));
      }
      case 't':
        if (Consume("true")) return Value(true);
        return Fail("invalid literal");
      case 'f':
        if (Consume("false")) return Value(false);
        return Fail("invalid literal");
      case 'n':
        if (Consume("null")) return Value(nullptr);
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Value obj = Value::MakeObject();
    SkipWs();
    if (!Eof() && Peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') return Fail("expected object key");
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (Eof() || Peek() != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      Result<Value> val = ParseValue(depth + 1);
      if (!val.ok()) return val;
      obj[key.value()] = std::move(val.value());
      SkipWs();
      if (Eof()) return Fail("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return obj;
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Value arr = Value::MakeArray();
    SkipWs();
    if (!Eof() && Peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      SkipWs();
      Result<Value> val = ParseValue(depth + 1);
      if (!val.ok()) return val;
      arr.push_back(std::move(val.value()));
      SkipWs();
      if (Eof()) return Fail("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return arr;
      }
      return Fail("expected ',' or ']'");
    }
  }

  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return FailStatus("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<uint32_t>(c - 'A' + 10);
      else return FailStatus("invalid hex digit in \\u escape");
    }
    pos_ += 4;
    return value;
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (Eof()) return FailStatus("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return FailStatus("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (Eof()) return FailStatus("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          Result<uint32_t> cp = ParseHex4();
          if (!cp.ok()) return cp.status();
          uint32_t code = cp.value();
          if (code >= 0xD800 && code <= 0xDBFF) {  // high surrogate
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              Result<uint32_t> lo = ParseHex4();
              if (!lo.ok()) return lo.status();
              if (lo.value() >= 0xDC00 && lo.value() <= 0xDFFF) {
                code = 0x10000 + ((code - 0xD800) << 10) + (lo.value() - 0xDC00);
              } else {
                return FailStatus("invalid low surrogate");
              }
            } else {
              return FailStatus("lone high surrogate");
            }
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return FailStatus("lone low surrogate");
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return FailStatus("invalid escape character");
      }
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (!Eof() && Peek() == '-') ++pos_;
    bool has_digits = false;
    while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
      has_digits = true;
    }
    if (!has_digits) return Fail("invalid number");
    bool is_double = false;
    if (!Eof() && Peek() == '.') {
      is_double = true;
      ++pos_;
      bool frac = false;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        frac = true;
      }
      if (!frac) return Fail("digits required after decimal point");
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) ++pos_;
      bool exp = false;
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
        exp = true;
      }
      if (!exp) return Fail("digits required in exponent");
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t i = 0;
      auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), i);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        return Value(i);
      }
      // fall through to double on overflow
    }
    double d = std::strtod(std::string(token).c_str(), nullptr);
    return Value(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace laminar::json
