// Deterministic, platform-independent hashing primitives.
//
// The embedding simulators (UnixcoderSim, ReaccSim) and the SPT feature index
// rely on *stable* hashes: two runs of any bench on any machine must produce
// identical feature vectors. std::hash gives no such guarantee, so everything
// hashes through FNV-1a / splitmix64 defined here.
#pragma once

#include <cstdint>
#include <string_view>

namespace laminar::hashing {

/// 64-bit FNV-1a over bytes. Stable across platforms and runs.
constexpr uint64_t Fnv1a64(std::string_view bytes,
                           uint64_t seed = 0xcbf29ce484222325ULL) {
  uint64_t h = seed;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates sequential/structured inputs. Used to
/// derive per-dimension signs and buckets from a single string hash.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combine (boost-style but 64-bit).
constexpr uint64_t Combine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace laminar::hashing
