#include "common/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace laminar::strings {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find('\n', start);
    std::string_view line;
    if (pos == std::string_view::npos) {
      if (start == text.size()) break;  // no trailing empty line
      line = text.substr(start);
      start = text.size() + 1;
    } else {
      line = text.substr(start, pos - start);
      start = pos + 1;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
    if (pos == std::string_view::npos) break;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() && lower(haystack[i + j]) == lower(needle[j])) ++j;
    if (j == needle.size()) return true;
  }
  return false;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::vector<std::string> SplitIdentifier(std::string_view identifier) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      words.push_back(ToLower(current));
      current.clear();
    }
  };
  for (size_t i = 0; i < identifier.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(identifier[i]);
    if (c == '_' || c == '.' || c == ' ') {
      flush();
      continue;
    }
    if (std::isdigit(c)) {
      if (!current.empty() && !std::isdigit(static_cast<unsigned char>(current.back()))) flush();
      current += static_cast<char>(c);
      continue;
    }
    if (std::isupper(c)) {
      // Boundary at lower->Upper ("readHttp") and at the end of an acronym
      // run ("HTTPResponse" -> "HTTP" + "Response").
      bool prev_lower_or_digit =
          !current.empty() &&
          (std::islower(static_cast<unsigned char>(current.back())) ||
           std::isdigit(static_cast<unsigned char>(current.back())));
      bool next_lower = i + 1 < identifier.size() &&
                        std::islower(static_cast<unsigned char>(identifier[i + 1]));
      bool prev_upper = !current.empty() &&
                        std::isupper(static_cast<unsigned char>(current.back()));
      if (prev_lower_or_digit || (prev_upper && next_lower)) flush();
      current += static_cast<char>(c);
      continue;
    }
    if (!std::isalpha(c)) {  // other punctuation acts as a separator
      flush();
      continue;
    }
    if (!current.empty() && std::isdigit(static_cast<unsigned char>(current.back()))) flush();
    current += static_cast<char>(c);
  }
  flush();
  return words;
}

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char ch : text) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string WithCommas(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (n < 0) out += '-';
  return {out.rbegin(), out.rend()};
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) return false;
  unsigned char first = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(first) && first != '_') return false;
  for (char ch : text.substr(1)) {
    unsigned char c = static_cast<unsigned char>(ch);
    if (!std::isalnum(c) && c != '_') return false;
  }
  return true;
}

}  // namespace laminar::strings
