// Lightweight error-handling vocabulary used across all Laminar modules.
//
// Laminar is a client/server system: most failures (missing registry rows,
// malformed code, protocol violations) are expected, recoverable conditions
// that must travel across module boundaries without exceptions. `Status`
// carries an error code plus a human-readable message; `Result<T>` couples a
// Status with a value for fallible factories and lookups.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace laminar {

/// Error categories, loosely modelled on HTTP/gRPC status families so that
/// the server layer can map them onto wire responses without a lookup table.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< entity does not exist in the registry/store
  kAlreadyExists,     ///< unique-key violation
  kFailedPrecondition,///< operation not valid in the current state
  kPermissionDenied,  ///< caller is not authenticated/authorized
  kResourceExhausted, ///< capacity limits (queue bounds, cache size)
  kUnavailable,       ///< transient: connection closed, engine busy
  kDeadlineExceeded,  ///< execution exceeded its serverless duration limit
  kInternal,          ///< invariant broken; indicates a bug
  kParseError,        ///< lexer/parser/JSON rejection
};

/// Human-readable name for a status code (stable; used in wire messages).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error outcome. Cheap to copy on the success path (no
/// allocation: the message string is empty).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::kNotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::kAlreadyExists, std::move(msg)};
  }
  static Status FailedPrecondition(std::string msg) {
    return {StatusCode::kFailedPrecondition, std::move(msg)};
  }
  static Status PermissionDenied(std::string msg) {
    return {StatusCode::kPermissionDenied, std::move(msg)};
  }
  static Status ResourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status Unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }
  static Status DeadlineExceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status ParseError(std::string msg) {
    return {StatusCode::kParseError, std::move(msg)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "<code-name>: <message>" (just "OK" for success); for logs and tests.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Mirrors the subset of absl::StatusOr Laminar needs:
/// construction from T or Status, `ok()`, `value()`, `status()`.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value)  // NOLINT: implicit by design
      : value_(std::move(value)), status_(Status::Ok()) {}
  Result(Status status) : status_(std::move(status)) {}  // NOLINT
  Result(StatusCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of an error Result aborts via
  /// std::optional's UB path in release; tests always check ok() first.
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return *std::move(value_); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("Result constructed without value");
};

}  // namespace laminar
