#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace laminar::log {
namespace {

std::atomic<Level>& LevelRef() {
  static std::atomic<Level> level{Level::kWarn};
  return level;
}

std::mutex& Mutex() {
  static std::mutex mu;
  return mu;
}

const char* Name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLevel(Level level) { LevelRef().store(level, std::memory_order_relaxed); }
Level GetLevel() { return LevelRef().load(std::memory_order_relaxed); }

void Write(Level level, std::string_view component, std::string_view message) {
  if (level < GetLevel()) return;
  std::scoped_lock lock(Mutex());
  std::fprintf(stderr, "[%s %.*s] %.*s\n", Name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace laminar::log
