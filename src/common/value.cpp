#include "common/value.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace laminar {
namespace {

const Value& NullValue() {
  static const Value kNull;
  return kNull;
}
const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}
const Value::Array& EmptyArray() {
  static const Value::Array kEmpty;
  return kEmpty;
}
const Value::Object& EmptyObject() {
  static const Value::Object kEmpty;
  return kEmpty;
}

void EscapeInto(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void NumberInto(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf; match common serializer behaviour
    return;
  }
  // Whole values keep a ".0" so they re-parse as doubles, not ints —
  // type-preserving round trips matter for stored embeddings and specs.
  auto emit = [&](const char* text) {
    out += text;
    if (out.find_first_of(".eE", out.size() - std::strlen(text)) ==
        std::string::npos) {
      out += ".0";
    }
  };
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to shortest round-trip representation cheaply: try %.15g then %.16g.
  for (int prec = 15; prec <= 17; ++prec) {
    char trial[32];
    std::snprintf(trial, sizeof trial, "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(trial, "%lf", &back);
    if (back == d) {
      emit(trial);
      return;
    }
  }
  emit(buf);
}

}  // namespace

Value& ValueObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return v;
  }
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

const Value* ValueObject::Find(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* ValueObject::Find(std::string_view key) {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void ValueObject::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return;
    }
  }
}

bool operator==(const ValueObject& a, const ValueObject& b) {
  return a.entries_ == b.entries_;
}

bool Value::as_bool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  if (const int64_t* i = std::get_if<int64_t>(&data_)) return *i != 0;
  return fallback;
}

int64_t Value::as_int(int64_t fallback) const {
  if (const int64_t* i = std::get_if<int64_t>(&data_)) return *i;
  if (const double* d = std::get_if<double>(&data_)) return static_cast<int64_t>(*d);
  if (const bool* b = std::get_if<bool>(&data_)) return *b ? 1 : 0;
  return fallback;
}

double Value::as_double(double fallback) const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&data_)) return static_cast<double>(*i);
  return fallback;
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  return EmptyString();
}

const Value::Array& Value::as_array() const {
  if (const Array* a = std::get_if<Array>(&data_)) return *a;
  return EmptyArray();
}

Value::Array& Value::mutable_array() {
  if (!is_array()) data_ = Array{};
  return std::get<Array>(data_);
}

void Value::push_back(Value v) { mutable_array().push_back(std::move(v)); }

size_t Value::size() const {
  if (const Array* a = std::get_if<Array>(&data_)) return a->size();
  if (const Object* o = std::get_if<Object>(&data_)) return o->size();
  return 0;
}

const Value::Object& Value::as_object() const {
  if (const Object* o = std::get_if<Object>(&data_)) return *o;
  return EmptyObject();
}

Value::Object& Value::mutable_object() {
  if (!is_object()) data_ = Object{};
  return std::get<Object>(data_);
}

const Value& Value::at(std::string_view key) const {
  if (const Object* o = std::get_if<Object>(&data_)) {
    if (const Value* v = o->Find(key)) return *v;
  }
  return NullValue();
}

bool Value::contains(std::string_view key) const {
  const Object* o = std::get_if<Object>(&data_);
  return o != nullptr && o->contains(key);
}

std::string Value::GetString(std::string_view key, std::string fallback) const {
  const Value& v = at(key);
  return v.is_string() ? v.as_string() : std::move(fallback);
}

int64_t Value::GetInt(std::string_view key, int64_t fallback) const {
  const Value& v = at(key);
  return v.is_number() || v.is_bool() ? v.as_int(fallback) : fallback;
}

double Value::GetDouble(std::string_view key, double fallback) const {
  const Value& v = at(key);
  return v.is_number() ? v.as_double(fallback) : fallback;
}

bool Value::GetBool(std::string_view key, bool fallback) const {
  const Value& v = at(key);
  return v.is_bool() || v.is_int() ? v.as_bool(fallback) : fallback;
}

namespace {

void SerializeInto(std::string& out, const Value& v, int indent, int depth) {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    NumberInto(out, v.as_double());
  } else if (v.is_string()) {
    EscapeInto(out, v.as_string());
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      SerializeInto(out, arr[i], indent, depth + 1);
    }
    newline(depth);
    out += ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, val] : obj) {
      if (!first) out += ',';
      first = false;
      newline(depth + 1);
      EscapeInto(out, k);
      out += indent < 0 ? ":" : ": ";
      SerializeInto(out, val, indent, depth + 1);
    }
    newline(depth);
    out += '}';
  }
}

}  // namespace

std::string Value::ToJson() const {
  std::string out;
  SerializeInto(out, *this, /*indent=*/-1, 0);
  return out;
}

std::string Value::ToJsonPretty() const {
  std::string out;
  SerializeInto(out, *this, /*indent=*/2, 0);
  return out;
}

}  // namespace laminar
