// UnixcoderSim — offline stand-in for the UniXcoder text-embedding model
// Laminar 2.0 uses for text-to-code search (paper §V-B).
//
// Substitution rationale (see DESIGN.md): semantic search in Laminar only
// needs one property from UniXcoder — descriptions that talk about the same
// things land close in embedding space. We approximate that with weighted
// signed-hash bag-of-subwords: whole words carry most of the weight, word
// bigrams add phrase sensitivity, and character trigrams give the partial
// robustness to morphology that subword tokenizers provide.
#pragma once

#include <string_view>

#include "embed/hashed_encoder.hpp"

namespace laminar::embed {

struct UnixcoderConfig {
  size_t dims = 4096;
  float word_weight = 1.0f;
  float bigram_weight = 0.5f;
  float trigram_weight = 0.15f;
  /// Common English/glue words are down-weighted by this factor.
  float stopword_weight = 0.1f;
};

class UnixcoderSim {
 public:
  explicit UnixcoderSim(UnixcoderConfig config = {});

  /// Embeds free text (a query or a PE/workflow description). Deterministic;
  /// L2-normalized.
  Vector EncodeText(std::string_view text) const;

  size_t dims() const { return config_.dims; }

 private:
  UnixcoderConfig config_;
};

}  // namespace laminar::embed
