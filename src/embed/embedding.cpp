#include "embed/embedding.hpp"

#include <cmath>

#include "common/json.hpp"

namespace laminar::embed {

float Dot(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return 0.0f;
  return simd::Dot(a.data(), b.data(), a.size());
}

float Norm(std::span<const float> a) {
  float sum = 0.0f;
  for (float x : a) sum += x * x;
  return std::sqrt(sum);
}

void L2Normalize(Vector& v) {
  float n = Norm(v);
  if (n <= 0.0f) return;
  for (float& x : v) x /= n;
}

float Cosine(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size() || a.empty()) return 0.0f;
  float na = Norm(a);
  if (na <= 0.0f) return 0.0f;
  return CosineWithNorm(a, na, b);
}

float DotNormalized(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size() || a.empty()) return 0.0f;
  return simd::Dot(a.data(), b.data(), a.size());
}

float CosineWithNorm(std::span<const float> a, float norm_a,
                     std::span<const float> b) {
  if (a.size() != b.size() || a.empty() || norm_a <= 0.0f) return 0.0f;
  float nb = Norm(b);
  if (nb <= 0.0f) return 0.0f;
  return simd::Dot(a.data(), b.data(), a.size()) / (norm_a * nb);
}

std::string ToJson(const Vector& v) {
  Value arr = Value::MakeArray();
  for (float x : v) arr.push_back(static_cast<double>(x));
  return arr.ToJson();
}

Vector FromJson(std::string_view json_text) {
  Result<Value> parsed = json::Parse(json_text);
  if (!parsed.ok() || !parsed->is_array()) return {};
  Vector out;
  out.reserve(parsed->size());
  for (const Value& x : parsed->as_array()) {
    if (!x.is_number()) return {};
    out.push_back(static_cast<float>(x.as_double()));
  }
  return out;
}

}  // namespace laminar::embed
