#include "embed/reacc_sim.hpp"

#include "common/strings.hpp"
#include "pycode/lexer.hpp"

namespace laminar::embed {
namespace {

constexpr uint64_t kCodeSpaceSeed = 0x7265616363707932ULL;  // "reaccpy2"

std::vector<std::string> CodeTokens(std::string_view code) {
  Result<std::vector<pycode::Token>> lexed = pycode::Lex(code);
  std::vector<std::string> tokens;
  if (lexed.ok()) {
    for (const pycode::Token& t : lexed.value()) {
      switch (t.type) {
        case pycode::TokenType::kName:
        case pycode::TokenType::kKeyword:
        case pycode::TokenType::kNumber:
        case pycode::TokenType::kString:
        case pycode::TokenType::kOp:
          tokens.push_back(t.text);
          break;
        default:
          break;  // structure tokens carry no content
      }
    }
    return tokens;
  }
  // Unlexable fragment (dropped code can cut a string literal in half):
  // degrade to whitespace tokens, as a subword tokenizer would still produce
  // *something* for any input.
  return strings::SplitWhitespace(code);
}

}  // namespace

ReaccSim::ReaccSim(ReaccConfig config) : config_(config) {}

Vector ReaccSim::EncodeCode(std::string_view code) const {
  HashedEncoder enc(config_.dims, kCodeSpaceSeed);
  std::vector<std::string> tokens = CodeTokens(code);
  for (const std::string& t : tokens) {
    enc.Add("u:" + t, config_.unigram_weight);
  }
  int n = config_.ngram;
  if (n > 1) {
    for (size_t i = 0; i + static_cast<size_t>(n) <= tokens.size(); ++i) {
      std::string gram = "g:";
      for (int j = 0; j < n; ++j) {
        gram += tokens[i + static_cast<size_t>(j)];
        gram += '\x1f';
      }
      enc.Add(gram, config_.ngram_weight);
    }
  }
  return enc.Finish();
}

}  // namespace laminar::embed
