// Dense embedding vectors and similarity math shared by the neural-model
// simulators (UnixcoderSim, ReaccSim) and the semantic search service.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simd/simd.hpp"

namespace laminar::embed {

using Vector = std::vector<float>;

/// The portable 4x-unrolled scalar dot kernel — now an alias of the
/// laminar::simd scalar tier, retained under its historical name for the
/// parity tests and as the reference implementation. The hot paths
/// (VectorIndex scan, HNSW traversal, Dot/DotNormalized below) instead call
/// simd::Dot, which runtime-dispatches to AVX2/AVX-512/NEON and falls back
/// to exactly this loop on hosts without vector units (or under the
/// LAMINAR_SIMD=scalar override).
inline float DotUnrolled(const float* a, const float* b, size_t n) {
  return simd::DotScalar(a, b, n);
}

float Dot(std::span<const float> a, std::span<const float> b);
float Norm(std::span<const float> a);

/// In-place L2 normalization; zero vectors are left unchanged.
void L2Normalize(Vector& v);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero or sizes differ.
float Cosine(std::span<const float> a, std::span<const float> b);

/// Cosine for pre-normalized (unit-length) vectors: a single dot-product
/// pass, no norm recomputation. 0 if sizes differ. Use wherever one query
/// is compared against many stored targets.
float DotNormalized(std::span<const float> a, std::span<const float> b);

/// Cosine with a caller-precomputed norm for `a` — avoids recomputing the
/// query norm once per target when only the targets vary. `norm_a` must be
/// Norm(a); 0 if either norm is zero or sizes differ.
float CosineWithNorm(std::span<const float> a, float norm_a,
                     std::span<const float> b);

/// Serializes to the JSON array Laminar stores in the registry's
/// 'descriptionEmbedding' CLOB column.
std::string ToJson(const Vector& v);
/// Parses the JSON produced by ToJson; empty vector on malformed input.
Vector FromJson(std::string_view json_text);

}  // namespace laminar::embed
