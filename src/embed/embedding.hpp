// Dense embedding vectors and similarity math shared by the neural-model
// simulators (UnixcoderSim, ReaccSim) and the semantic search service.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace laminar::embed {

using Vector = std::vector<float>;

float Dot(std::span<const float> a, std::span<const float> b);
float Norm(std::span<const float> a);

/// In-place L2 normalization; zero vectors are left unchanged.
void L2Normalize(Vector& v);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero or sizes differ.
float Cosine(std::span<const float> a, std::span<const float> b);

/// Serializes to the JSON array Laminar stores in the registry's
/// 'descriptionEmbedding' CLOB column.
std::string ToJson(const Vector& v);
/// Parses the JSON produced by ToJson; empty vector on malformed input.
Vector FromJson(std::string_view json_text);

}  // namespace laminar::embed
