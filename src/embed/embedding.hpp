// Dense embedding vectors and similarity math shared by the neural-model
// simulators (UnixcoderSim, ReaccSim) and the semantic search service.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace laminar::embed {

using Vector = std::vector<float>;

/// 4x-unrolled dot-product kernel shared by Dot/DotNormalized and the
/// search::VectorIndex scan loop. Four independent accumulators keep the
/// FP pipeline busy without -ffast-math reassociation.
inline float DotUnrolled(const float* a, const float* b, size_t n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  float s = (s0 + s1) + (s2 + s3);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float Dot(std::span<const float> a, std::span<const float> b);
float Norm(std::span<const float> a);

/// In-place L2 normalization; zero vectors are left unchanged.
void L2Normalize(Vector& v);

/// Cosine similarity in [-1, 1]; 0 if either vector is zero or sizes differ.
float Cosine(std::span<const float> a, std::span<const float> b);

/// Cosine for pre-normalized (unit-length) vectors: a single dot-product
/// pass, no norm recomputation. 0 if sizes differ. Use wherever one query
/// is compared against many stored targets.
float DotNormalized(std::span<const float> a, std::span<const float> b);

/// Cosine with a caller-precomputed norm for `a` — avoids recomputing the
/// query norm once per target when only the targets vary. `norm_a` must be
/// Norm(a); 0 if either norm is zero or sizes differ.
float CosineWithNorm(std::span<const float> a, float norm_a,
                     std::span<const float> b);

/// Serializes to the JSON array Laminar stores in the registry's
/// 'descriptionEmbedding' CLOB column.
std::string ToJson(const Vector& v);
/// Parses the JSON produced by ToJson; empty vector on malformed input.
Vector FromJson(std::string_view json_text);

}  // namespace laminar::embed
