// Signed feature hashing ("hashing trick") into a fixed-dimension dense
// vector — the numerical core of the offline neural-model simulators.
//
// Each term is hashed twice: once to pick a dimension, once to pick a sign.
// Terms that co-occur across two texts therefore contribute correlated mass
// to the same dimensions, so cosine over the hashed vectors approximates
// weighted term overlap — exactly the property semantic search needs, with
// no model weights required.
#pragma once

#include <cstdint>
#include <string_view>

#include "embed/embedding.hpp"

namespace laminar::embed {

class HashedEncoder {
 public:
  /// `seed` namespaces the hash space: encoders with different seeds produce
  /// incomparable vectors (used to keep text and code spaces separate).
  explicit HashedEncoder(size_t dims, uint64_t seed);

  /// Accumulates a term with the given weight.
  void Add(std::string_view term, float weight);

  /// Returns the accumulated, L2-normalized vector and resets the encoder.
  Vector Finish();

  size_t dims() const { return dims_; }

 private:
  size_t dims_;
  uint64_t seed_;
  Vector acc_;
};

}  // namespace laminar::embed
