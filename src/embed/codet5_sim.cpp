#include "embed/codet5_sim.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <unordered_set>

#include "common/strings.hpp"
#include "pycode/parser.hpp"

namespace laminar::embed {
namespace {

using pycode::Node;
using pycode::TokenType;

struct VerbRule {
  std::string_view api;
  std::string_view phrase;
};

// Ordered so that more specific phrases win the (stable) first-seen order.
constexpr std::array<VerbRule, 38> kVerbRules = {{
    {"append", "accumulates items into a list"},
    {"sum", "computes a sum"},
    {"mean", "computes an average"},
    {"average", "computes an average"},
    {"median", "computes a median"},
    {"max", "finds the maximum"},
    {"min", "finds the minimum"},
    {"sorted", "sorts data"},
    {"sort", "sorts data"},
    {"open", "opens a file"},
    {"read", "reads data"},
    {"readline", "reads lines"},
    {"write", "emits output records"},
    {"split", "splits text into parts"},
    {"join", "joins strings together"},
    {"lower", "normalizes text case"},
    {"upper", "normalizes text case"},
    {"strip", "trims whitespace"},
    {"replace", "replaces substrings"},
    {"randint", "generates random numbers"},
    {"random", "generates random numbers"},
    {"uniform", "draws random samples"},
    {"range", "iterates over a numeric range"},
    {"print", "prints results"},
    {"len", "measures lengths"},
    {"sqrt", "computes square roots"},
    {"log", "computes logarithms"},
    {"exp", "computes exponentials"},
    {"filter", "filters items"},
    {"map", "transforms items"},
    {"zip", "pairs sequences"},
    {"enumerate", "enumerates items"},
    {"abs", "takes absolute values"},
    {"round", "rounds values"},
    {"count", "counts occurrences"},
    {"get", "looks up dictionary values"},
    {"items", "iterates over a dictionary"},
    {"isdigit", "validates digits"},
}};

bool IsGenericIdentifier(const std::string& word) {
  static const std::unordered_set<std::string> kGeneric = {
      "self",  "cls",   "init",  "process", "args", "kwargs", "data",
      "input", "inputs", "output", "outputs", "value", "item", "result",
      "pe",    "def",   "none",  "true",   "false", "return", "num",
      "val",   "tmp",   "obj",   "arg",    "res",   "elem",   "name"};
  return kGeneric.contains(word) || word.size() <= 1;
}

std::string StripQuotes(const std::string& literal) {
  std::string s = literal;
  // Drop prefix letters (r/b/f/u).
  size_t i = 0;
  while (i < s.size() && s[i] != '"' && s[i] != '\'') ++i;
  s = s.substr(i);
  for (std::string_view q : {"\"\"\"", "'''", "\"", "'"}) {
    if (strings::StartsWith(s, q) && strings::EndsWith(s, q) &&
        s.size() >= 2 * q.size()) {
      return std::string(strings::Trim(s.substr(q.size(), s.size() - 2 * q.size())));
    }
  }
  return s;
}

std::string FirstSentence(const std::string& text) {
  size_t dot = text.find('.');
  std::string first =
      dot == std::string::npos ? text : text.substr(0, dot + 1);
  // Collapse internal newlines from triple-quoted docstrings.
  return strings::ReplaceAll(strings::ReplaceAll(first, "\n", " "), "  ", " ");
}

/// Finds the first descendant with the given rule kind.
const Node* FindKind(const Node& node, std::string_view kind) {
  if (!node.leaf && node.kind == kind) return &node;
  for (const auto& c : node.children) {
    if (const Node* found = FindKind(*c, kind)) return found;
  }
  return nullptr;
}

/// The NAME leaf following the 'def'/'class' keyword.
std::string DeclaredName(const Node& def_node) {
  bool saw_kw = false;
  for (const auto& c : def_node.children) {
    if (c->leaf && c->token.type == TokenType::kKeyword &&
        (c->token.text == "def" || c->token.text == "class")) {
      saw_kw = true;
      continue;
    }
    if (saw_kw && c->leaf && c->token.type == TokenType::kName) {
      return c->token.text;
    }
  }
  return {};
}

/// First docstring in a def/class suite: leading string expression.
std::string Docstring(const Node& def_node) {
  const Node* suite = nullptr;
  for (const auto& c : def_node.children) {
    if (!c->leaf && c->kind == "suite") {
      suite = c.get();
      break;
    }
  }
  if (suite == nullptr || suite->children.empty()) return {};
  const Node* first = suite->children.front().get();
  if (first->leaf && first->token.type == TokenType::kString) {
    return StripQuotes(first->token.text);
  }
  if (!first->leaf && first->kind == "expr_stmt" && !first->children.empty()) {
    const Node* inner = first->children.front().get();
    if (inner->leaf && inner->token.type == TokenType::kString) {
      return StripQuotes(inner->token.text);
    }
  }
  return {};
}

/// Direct func_def children of a class suite (not nested functions).
std::vector<const Node*> ClassMethods(const Node& class_def) {
  std::vector<const Node*> methods;
  for (const auto& c : class_def.children) {
    if (c->leaf || c->kind != "suite") continue;
    for (const auto& stmt : c->children) {
      if (!stmt->leaf && stmt->kind == "func_def") {
        methods.push_back(stmt.get());
      } else if (!stmt->leaf && stmt->kind == "decorated") {
        for (const auto& inner : stmt->children) {
          if (!inner->leaf && inner->kind == "func_def") {
            methods.push_back(inner.get());
          }
        }
      }
    }
  }
  return methods;
}

/// Names invoked as calls anywhere in the subtree, in first-seen order.
void CollectCalls(const Node& node, std::vector<std::string>& out,
                  std::set<std::string>& seen) {
  if (!node.leaf && node.kind == "call" && !node.children.empty()) {
    const Node* callee = node.children.front().get();
    std::string name;
    if (callee->leaf && callee->token.type == TokenType::kName) {
      name = callee->token.text;
    } else if (!callee->leaf && callee->kind == "attribute" &&
               !callee->children.empty()) {
      const Node* last = callee->children.back().get();
      if (last->leaf && last->token.type == TokenType::kName) {
        name = last->token.text;
      }
    }
    if (!name.empty() && seen.insert(name).second) out.push_back(name);
  }
  for (const auto& c : node.children) CollectCalls(*c, out, seen);
}

/// Local variable names of the scope: parameters, assignment/loop targets.
/// A summarizer must not surface these — they are arbitrary spellings, not
/// topic words.
void CollectLocalNames(const Node& node, std::set<std::string>& out) {
  if (!node.leaf) {
    if (node.kind == "param") {
      for (const auto& c : node.children) {
        if (c->leaf && c->token.type == TokenType::kName) {
          out.insert(c->token.text);
          break;
        }
      }
    } else if (node.kind == "assign" || node.kind == "aug_assign" ||
               node.kind == "ann_assign") {
      // Leading target expression: collect its plain names.
      if (!node.children.empty()) {
        node.children[0]->Visit([&](const Node& n) {
          if (n.leaf && n.token.type == TokenType::kName) {
            out.insert(n.token.text);
          }
        });
      }
    } else if (node.kind == "for_stmt" || node.kind == "comp_for") {
      // Names between 'for' and 'in'.
      bool in_target = false;
      for (const auto& c : node.children) {
        if (c->leaf && c->token.IsKeyword("for")) {
          in_target = true;
          continue;
        }
        if (c->leaf && c->token.IsKeyword("in")) break;
        if (!in_target) continue;
        c->Visit([&](const Node& n) {
          if (n.leaf && n.token.type == TokenType::kName) {
            out.insert(n.token.text);
          }
        });
      }
    }
  }
  for (const auto& c : node.children) CollectLocalNames(*c, out);
}

/// Identifier words (split camel/snake) ranked by frequency; generic words
/// and local-variable spellings removed. Gives the summary its topical
/// vocabulary (API names, class/method words, field names).
std::vector<std::string> SalientWords(const Node& node, size_t limit) {
  std::set<std::string> locals;
  CollectLocalNames(node, locals);
  std::map<std::string, int> freq;
  std::vector<std::string> order;
  node.Visit([&](const Node& n) {
    if (!n.leaf || n.token.type != TokenType::kName) return;
    if (locals.contains(n.token.text)) return;
    for (const std::string& w : strings::SplitIdentifier(n.token.text)) {
      if (IsGenericIdentifier(w)) continue;
      if (freq[w]++ == 0) order.push_back(w);
    }
  });
  std::stable_sort(order.begin(), order.end(),
                   [&](const std::string& a, const std::string& b) {
                     return freq[a] > freq[b];
                   });
  if (order.size() > limit) order.resize(limit);
  return order;
}

std::vector<std::string> VerbPhrases(const Node& scope, size_t limit) {
  std::vector<std::string> calls;
  std::set<std::string> seen;
  CollectCalls(scope, calls, seen);
  std::vector<std::string> phrases;
  std::set<std::string_view> used;
  for (const std::string& call : calls) {
    for (const VerbRule& rule : kVerbRules) {
      if (call == rule.api && used.insert(rule.phrase).second) {
        phrases.emplace_back(rule.phrase);
        break;
      }
    }
    if (phrases.size() >= limit) break;
  }
  // Structural verbs when nothing API-specific surfaced.
  if (phrases.empty()) {
    if (FindKind(scope, "for_stmt") || FindKind(scope, "while_stmt")) {
      phrases.emplace_back("iterates over its input stream");
    }
    if (FindKind(scope, "if_stmt")) {
      phrases.emplace_back("applies a conditional rule");
    }
  }
  return phrases;
}

std::string JoinPhrases(const std::vector<std::string>& phrases) {
  if (phrases.empty()) return {};
  if (phrases.size() == 1) return phrases[0];
  std::string out;
  for (size_t i = 0; i < phrases.size(); ++i) {
    if (i) out += i + 1 == phrases.size() ? " and " : ", ";
    out += phrases[i];
  }
  return out;
}

const Node* FindProcessMethod(const Node& root) {
  const Node* cls = FindKind(root, "class_def");
  std::vector<const Node*> methods;
  if (cls != nullptr) {
    methods = ClassMethods(*cls);
  } else if (const Node* fn = FindKind(root, "func_def")) {
    methods.push_back(fn);
  }
  const Node* fallback = nullptr;
  for (const Node* m : methods) {
    std::string name = DeclaredName(*m);
    if (name == "_process" || name == "process") return m;
    if (name != "__init__" && fallback == nullptr) fallback = m;
  }
  return fallback != nullptr ? fallback
                             : (methods.empty() ? nullptr : methods.front());
}

std::string TitleWords(const std::string& identifier) {
  return strings::Join(strings::SplitIdentifier(identifier), " ");
}

}  // namespace

std::string CodeT5Sim::Summarize(std::string_view code,
                                 DescriptionContext context) const {
  Result<pycode::NodePtr> parsed = pycode::ParseLenient(code);
  if (!parsed.ok()) return "A processing element.";
  const Node& root = *parsed.value();

  if (context == DescriptionContext::kProcessMethodOnly) {
    // Laminar 1.0: only the body of _process() is visible to the model.
    const Node* method = FindProcessMethod(root);
    const Node& scope = method != nullptr ? *method : root;
    std::string doc = method != nullptr ? Docstring(*method) : std::string();
    std::vector<std::string> phrases = VerbPhrases(scope, 2);
    std::string out;
    if (!doc.empty()) {
      out = FirstSentence(doc);
    } else if (!phrases.empty()) {
      out = "A function that " + JoinPhrases(phrases) + ".";
    } else {
      out = "Processes an input and produces an output.";
    }
    return out;
  }

  // Laminar 2.0: full class context.
  const Node* cls = FindKind(root, "class_def");
  std::string out;
  if (cls != nullptr) {
    std::string name = DeclaredName(*cls);
    if (!name.empty()) out += TitleWords(name) + " processing element.";
    std::string doc = Docstring(*cls);
    if (!doc.empty()) {
      if (!out.empty()) out += ' ';
      out += FirstSentence(doc);
    }
    std::vector<std::string> method_docs;
    for (const Node* m : ClassMethods(*cls)) {
      std::string mdoc = Docstring(*m);
      if (!mdoc.empty()) method_docs.push_back(FirstSentence(mdoc));
    }
    for (const std::string& mdoc : method_docs) {
      out += ' ';
      out += mdoc;
    }
    std::vector<std::string> phrases = VerbPhrases(*cls, 4);
    if (!phrases.empty()) {
      out += " It " + JoinPhrases(phrases) + ".";
    }
    std::vector<std::string> topics = SalientWords(*cls, 5);
    if (!topics.empty()) {
      out += " Related to " + strings::Join(topics, ", ") + ".";
    }
  } else {
    // Bare function converted to a PE.
    const Node* fn = FindKind(root, "func_def");
    std::string name = fn != nullptr ? DeclaredName(*fn) : std::string();
    if (!name.empty()) out += TitleWords(name) + " function.";
    std::string doc = fn != nullptr ? Docstring(*fn) : std::string();
    if (!doc.empty()) out += ' ' + FirstSentence(doc);
    std::vector<std::string> phrases = VerbPhrases(root, 4);
    if (!phrases.empty()) out += " It " + JoinPhrases(phrases) + ".";
    std::vector<std::string> topics = SalientWords(root, 5);
    if (!topics.empty()) out += " Related to " + strings::Join(topics, ", ") + ".";
  }
  std::string_view trimmed = strings::Trim(out);
  return trimmed.empty() ? "A processing element." : std::string(trimmed);
}

std::string CodeT5Sim::SummarizeWorkflow(
    std::string_view workflow_name,
    const std::vector<std::string>& pe_descriptions) const {
  std::string out = TitleWords(std::string(workflow_name)) + " workflow.";
  if (!pe_descriptions.empty()) {
    out += " It connects " + std::to_string(pe_descriptions.size()) +
           " processing elements:";
    for (const std::string& d : pe_descriptions) {
      out += ' ';
      out += FirstSentence(d);
    }
  }
  return out;
}

}  // namespace laminar::embed
