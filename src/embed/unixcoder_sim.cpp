#include "embed/unixcoder_sim.hpp"

#include <array>
#include <algorithm>

#include "common/strings.hpp"

namespace laminar::embed {
namespace {

constexpr uint64_t kTextSpaceSeed = 0x756e6978636f6465ULL;  // "unixcode"

bool IsStopword(std::string_view w) {
  // English glue words plus Laminar-domain boilerplate: every registry
  // entry is a "PE"/"processing element", so those words carry no signal —
  // the equivalent of the corpus-frequency discount a trained encoder
  // internalizes from its pre-training distribution.
  static constexpr std::array<std::string_view, 32> kStop = {
      "a",   "an",  "the", "of",  "to",  "in",   "on",   "for",
      "and", "or",  "is",  "are", "be",  "that", "this", "it",
      "with", "as", "by",  "from", "at", "its",  "into", "if",
      "pe",  "pes", "processing", "element", "elements", "class",
      "function", "related"};
  return std::find(kStop.begin(), kStop.end(), w) != kStop.end();
}

/// Light suffix stemming so that morphological variants land on shared
/// terms ("anomalies"/"anomaly", "detection"/"detect") — the cheapest
/// analogue of the subword semantics a trained encoder provides.
std::string StemLite(const std::string& w) {
  auto ends = [&](std::string_view suffix) {
    return w.size() > suffix.size() + 2 &&
           w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  if (ends("ies")) return w.substr(0, w.size() - 3) + "y";
  if (ends("ions")) return w.substr(0, w.size() - 4);
  if (ends("ion")) return w.substr(0, w.size() - 3);
  if (ends("ing")) return w.substr(0, w.size() - 3);
  if (ends("ed")) return w.substr(0, w.size() - 2);
  if (ends("es")) return w.substr(0, w.size() - 2);
  if (ends("s")) return w.substr(0, w.size() - 1);
  return w;
}

}  // namespace

UnixcoderSim::UnixcoderSim(UnixcoderConfig config) : config_(config) {}

Vector UnixcoderSim::EncodeText(std::string_view text) const {
  HashedEncoder enc(config_.dims, kTextSpaceSeed);
  std::vector<std::string> words = strings::WordTokens(text);
  for (size_t i = 0; i < words.size(); ++i) {
    const std::string& w = words[i];
    float weight =
        IsStopword(w) ? config_.word_weight * config_.stopword_weight
                      : config_.word_weight;
    enc.Add("w:" + w, weight);
    if (!IsStopword(w)) {
      enc.Add("s:" + StemLite(w), 0.8f * weight);
    }
    if (i + 1 < words.size()) {
      enc.Add("b:" + w + "_" + words[i + 1], config_.bigram_weight);
    }
    if (w.size() >= 3 && !IsStopword(w)) {
      for (size_t j = 0; j + 3 <= w.size(); ++j) {
        enc.Add("t:" + w.substr(j, 3), config_.trigram_weight);
      }
    }
  }
  return enc.Finish();
}

}  // namespace laminar::embed
