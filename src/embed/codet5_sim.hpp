// CodeT5Sim — offline stand-in for the CodeT5 description-generation model
// (paper §IV-C and §VII-B).
//
// Laminar uses CodeT5 to auto-generate a natural-language description of a
// PE when the user did not supply one; descriptions feed both literal and
// semantic search. The simulator is a rule-based summarizer over the parse
// tree: docstrings, the class/function name split into words, detected API
// calls mapped to verb phrases, and salient identifiers. It reproduces the
// paper's Fig. 10 contrast directly: with kProcessMethodOnly it sees none of
// the class-level context (name, docstring, init fields, other methods) and
// produces the vague descriptions Laminar 1.0 suffered from; kFullClass
// produces specific ones.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace laminar::embed {

enum class DescriptionContext {
  kProcessMethodOnly,  ///< Laminar 1.0 behaviour: only the _process() body
  kFullClass,          ///< Laminar 2.0 behaviour: the entire class definition
};

class CodeT5Sim {
 public:
  /// Generates a one-paragraph description of a PE class (or bare function).
  /// Never fails: unparseable input degrades to a generic sentence.
  std::string Summarize(std::string_view code, DescriptionContext context) const;

  /// Generates a workflow description given the workflow name and the
  /// already-generated PE descriptions (paper §IV-C: workflows are described
  /// by synthesizing a class containing every PE's functions).
  std::string SummarizeWorkflow(std::string_view workflow_name,
                                const std::vector<std::string>& pe_descriptions) const;
};

}  // namespace laminar::embed
