#include "embed/hashed_encoder.hpp"

#include "common/hashing.hpp"

namespace laminar::embed {

HashedEncoder::HashedEncoder(size_t dims, uint64_t seed)
    : dims_(dims), seed_(seed), acc_(dims, 0.0f) {}

void HashedEncoder::Add(std::string_view term, float weight) {
  uint64_t h = hashing::Fnv1a64(term, seed_);
  uint64_t mixed = hashing::SplitMix64(h);
  size_t dim = static_cast<size_t>(mixed % dims_);
  float sign = (mixed >> 63) != 0 ? 1.0f : -1.0f;
  acc_[dim] += sign * weight;
}

Vector HashedEncoder::Finish() {
  Vector out(dims_, 0.0f);
  out.swap(acc_);
  L2Normalize(out);
  return out;
}

}  // namespace laminar::embed
