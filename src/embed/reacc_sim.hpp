// ReaccSim — offline stand-in for the ReACC-py-retriever code-embedding
// model that implemented code-to-code search in Laminar 1.0 (the baseline
// the paper's Fig. 13 evaluates).
//
// ReACC's published behaviour: excellent recall of identical or nearly
// identical code (clone detection), but sensitive to identifier renames and
// to missing code — it embeds the token *sequence*. We reproduce exactly
// that profile: verbatim token unigrams plus token n-grams (sequence
// coupling). No variable-name generalization — that is Aroma's advantage,
// and the contrast is the whole point of the Fig. 12/13 experiment.
#pragma once

#include <string_view>

#include "embed/hashed_encoder.hpp"

namespace laminar::embed {

struct ReaccConfig {
  size_t dims = 4096;
  float unigram_weight = 0.5f;
  float ngram_weight = 3.0f;  ///< sequence coupling dominates
  int ngram = 5;
};

class ReaccSim {
 public:
  explicit ReaccSim(ReaccConfig config = {});

  /// Embeds a code snippet. Tokenizes with the Python lexer when possible,
  /// falling back to whitespace tokens for unlexable fragments.
  Vector EncodeCode(std::string_view code) const;

  size_t dims() const { return config_.dims; }

 private:
  ReaccConfig config_;
};

}  // namespace laminar::embed
