#include "engine/run_queue.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/clock.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::engine {
namespace {

std::string TenantLabel(const std::string& tenant) {
  return "tenant=\"" + tenant + '"';
}

telemetry::Counter& OutcomeCounter(const std::string& tenant,
                                   const char* outcome) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_tenant_runs_total",
      TenantLabel(tenant) + ",outcome=\"" + outcome + '"');
}

}  // namespace

FairRunQueue::Ticket& FairRunQueue::Ticket::operator=(Ticket&& other) noexcept {
  if (this != &other) {
    Release();
    queue_ = other.queue_;
    tenant_ = std::move(other.tenant_);
    other.queue_ = nullptr;
  }
  return *this;
}

void FairRunQueue::Ticket::Release() {
  if (queue_ == nullptr) return;
  FairRunQueue* queue = queue_;
  queue_ = nullptr;
  queue->ReleaseSlot(tenant_);
}

FairRunQueue::FairRunQueue(int slots, size_t max_queue_depth)
    : slots_(std::max(slots, 1)), max_queue_depth_(max_queue_depth) {}

FairRunQueue::~FairRunQueue() = default;

size_t FairRunQueue::BestWaiterIndexLocked(const TenantState& tenant) {
  size_t best = 0;
  for (size_t i = 1; i < tenant.waiters.size(); ++i) {
    const Waiter& a = *tenant.waiters[i];
    const Waiter& b = *tenant.waiters[best];
    const int64_t kNoDeadline = std::numeric_limits<int64_t>::max();
    int64_t da = a.deadline_us > 0 ? a.deadline_us : kNoDeadline;
    int64_t db = b.deadline_us > 0 ? b.deadline_us : kNoDeadline;
    if (a.priority != b.priority ? a.priority > b.priority
        : da != db              ? da < db
                                : a.seq < b.seq) {
      best = i;
    }
  }
  return best;
}

void FairRunQueue::DispatchLocked() {
  while (in_use_ < slots_) {
    // Start-time fair queuing: among tenants with queued waiters that are
    // under their concurrency cap, grant the one with the smallest virtual
    // time (std::map iteration breaks ties by tenant name, so the grant
    // order is deterministic).
    TenantState* chosen = nullptr;
    for (auto& [name, tenant] : tenants_) {
      if (tenant.waiters.empty()) continue;
      if (tenant.max_concurrent > 0 &&
          tenant.running >= tenant.max_concurrent) {
        continue;  // at its cap; reconsidered when one of its runs releases
      }
      if (chosen == nullptr || tenant.vtime < chosen->vtime) chosen = &tenant;
    }
    if (chosen == nullptr) return;
    size_t index = BestWaiterIndexLocked(*chosen);
    Waiter* waiter = chosen->waiters[index];
    chosen->waiters.erase(chosen->waiters.begin() + index);
    --total_queued_;
    // Advance the tenant's virtual time by 1/weight per grant; the global
    // virtual clock tracks the latest grant's start tag so a tenant idle
    // for a while re-enters at "now" instead of with banked credit.
    double start = std::max(chosen->vtime, vclock_);
    vclock_ = start;
    chosen->vtime = start + 1.0 / chosen->weight;
    ++chosen->running;
    ++chosen->admitted;
    ++in_use_;
    waiter->granted = true;
    waiter->cv.notify_one();
  }
}

Result<FairRunQueue::Ticket> FairRunQueue::Acquire(
    const std::string& tenant, const AcquireOptions& options,
    double* retry_after_ms) {
  auto& registry = telemetry::MetricsRegistry::Global();
  telemetry::Histogram& wait_hist = registry.GetHistogram(
      "laminar_tenant_queue_wait_ms", TenantLabel(tenant));
  telemetry::Gauge& running_gauge =
      registry.GetGauge("laminar_tenant_runs_running", TenantLabel(tenant));
  telemetry::Gauge& queued_gauge =
      registry.GetGauge("laminar_tenant_runs_queued", TenantLabel(tenant));

  Stopwatch wait_watch;
  std::unique_lock lock(mu_);
  TenantState& state = tenants_[tenant];
  // Weight and cap are properties of the tenant, re-supplied on every
  // acquire (the server passes the tenant's configured quotas); latest wins.
  state.weight = std::max(options.weight, 1e-3);
  state.max_concurrent = options.max_concurrent;

  auto reject = [&](const std::string& what) -> Status {
    ++state.rejected;
    OutcomeCounter(tenant, "rejected").Inc();
    if (retry_after_ms != nullptr) {
      // Back-off hint: roughly one slot turn per queued run ahead of this
      // request, floored so even an empty-queue cap rejection asks for a
      // pause before retrying.
      *retry_after_ms =
          50.0 * (1.0 + static_cast<double>(total_queued_) /
                            static_cast<double>(slots_));
    }
    return Status::ResourceExhausted(what);
  };

  if (max_queue_depth_ > 0 && total_queued_ >= max_queue_depth_) {
    return reject("run queue full (" + std::to_string(total_queued_) +
                  " queued)");
  }
  if (options.max_queued > 0 &&
      state.waiters.size() >= static_cast<size_t>(options.max_queued)) {
    return reject("tenant '" + tenant + "' run queue full (" +
                  std::to_string(state.waiters.size()) + " queued)");
  }

  Waiter waiter;
  waiter.priority = options.priority;
  waiter.deadline_us = options.deadline_us;
  waiter.seq = next_seq_++;
  state.waiters.push_back(&waiter);
  ++total_queued_;
  queued_gauge.Add(1);
  DispatchLocked();

  auto granted = [&] { return waiter.granted; };
  while (!waiter.granted) {
    if (waiter.deadline_us <= 0) {
      waiter.cv.wait(lock, granted);
      break;
    }
    int64_t now_us = NowMicros();
    if (now_us < waiter.deadline_us) {
      waiter.cv.wait_for(
          lock, std::chrono::microseconds(waiter.deadline_us - now_us),
          granted);
    }
    if (!waiter.granted && NowMicros() >= waiter.deadline_us) {
      // Deadline passed while queued: deregister and report 408 — the run
      // could not have finished in time, so it never takes a slot.
      auto it = std::find(state.waiters.begin(), state.waiters.end(), &waiter);
      if (it != state.waiters.end()) {
        state.waiters.erase(it);
        --total_queued_;
      }
      ++state.deadline_expired;
      queued_gauge.Add(-1);
      OutcomeCounter(tenant, "deadline").Inc();
      wait_hist.Observe(wait_watch.ElapsedMillis());
      return Status::DeadlineExceeded(
          "run deadline expired while queued for tenant '" + tenant + "'");
    }
  }

  queued_gauge.Add(-1);
  running_gauge.Add(1);
  OutcomeCounter(tenant, "admitted").Inc();
  wait_hist.Observe(wait_watch.ElapsedMillis());
  return Ticket(this, tenant);
}

void FairRunQueue::ReleaseSlot(const std::string& tenant) {
  {
    std::scoped_lock lock(mu_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.running > 0) {
      --it->second.running;
    }
    if (in_use_ > 0) --in_use_;
    DispatchLocked();
  }
  telemetry::MetricsRegistry::Global()
      .GetGauge("laminar_tenant_runs_running", TenantLabel(tenant))
      .Add(-1);
}

size_t FairRunQueue::queued() const {
  std::scoped_lock lock(mu_);
  return total_queued_;
}

std::map<std::string, TenantQueueStats> FairRunQueue::Snapshot() const {
  std::scoped_lock lock(mu_);
  std::map<std::string, TenantQueueStats> out;
  for (const auto& [name, tenant] : tenants_) {
    TenantQueueStats stats;
    stats.admitted = tenant.admitted;
    stats.rejected = tenant.rejected;
    stats.deadline_expired = tenant.deadline_expired;
    stats.running = tenant.running;
    stats.queued = static_cast<int>(tenant.waiters.size());
    stats.vtime = tenant.vtime;
    out[name] = stats;
  }
  return out;
}

}  // namespace laminar::engine
