#include "engine/autoimport.hpp"

#include <algorithm>

#include "pycode/parser.hpp"

namespace laminar::engine {
namespace {

using pycode::Node;
using pycode::TokenType;

/// First dotted-name segment after 'import' / 'from'.
void CollectImports(const Node& node, std::vector<std::string>& out) {
  if (!node.leaf &&
      (node.kind == "import_stmt" || node.kind == "from_import_stmt")) {
    // Walk children: names following the import/from keyword until 'as',
    // ',' resets, '.' continues a dotted name (we only need the top module).
    bool expect_module = false;
    bool taken_for_this_clause = false;
    bool from_form = node.kind == "from_import_stmt";
    for (const auto& c : node.children) {
      if (c->leaf && c->token.type == TokenType::kKeyword) {
        if (c->token.text == "import") {
          // In the from-form, the module already appeared after 'from'.
          expect_module = !from_form;
          taken_for_this_clause = from_form;  // stop collecting names
          if (from_form) break;
          continue;
        }
        if (c->token.text == "from") {
          expect_module = true;
          continue;
        }
        if (c->token.text == "as") {
          expect_module = false;
          continue;
        }
      }
      if (c->leaf && c->token.IsOp(",")) {
        expect_module = true;
        taken_for_this_clause = false;
        continue;
      }
      if (!expect_module || taken_for_this_clause) continue;
      if (c->leaf && c->token.type == TokenType::kName) {
        out.push_back(c->token.text);
        taken_for_this_clause = true;
      } else if (!c->leaf && c->kind == "dotted_name" &&
                 !c->children.empty() && c->children[0]->leaf) {
        out.push_back(c->children[0]->token.text);
        taken_for_this_clause = true;
      }
    }
    return;
  }
  for (const auto& c : node.children) CollectImports(*c, out);
}

}  // namespace

AutoImporter::AutoImporter() {
  // Python stdlib + the packages a Laminar engine image ships with.
  for (const char* m :
       {"sys",    "os",        "math",   "random", "json",      "re",
        "time",   "datetime",  "itertools", "functools", "collections",
        "typing", "string",    "statistics", "heapq", "bisect",  "csv",
        "io",     "hashlib",   "uuid",   "logging", "argparse",  "abc",
        "numpy",  "redis",     "requests", "flask", "dispel4py"}) {
    preinstalled_.insert(m);
  }
}

void AutoImporter::RegisterModule(const std::string& module) {
  registered_.insert(module);
}

void AutoImporter::AddPreinstalled(const std::string& module) {
  preinstalled_.insert(module);
}

Result<ImportScan> AutoImporter::Scan(std::string_view code) const {
  Result<pycode::NodePtr> parsed = pycode::ParseLenient(code);
  if (!parsed.ok()) return parsed.status();
  std::vector<std::string> raw;
  CollectImports(*parsed.value(), raw);

  ImportScan scan;
  for (const std::string& module : raw) {
    if (std::find(scan.imports.begin(), scan.imports.end(), module) !=
        scan.imports.end()) {
      continue;  // dedupe, keep first occurrence order
    }
    scan.imports.push_back(module);
    if (preinstalled_.contains(module)) {
      scan.preinstalled.push_back(module);
    } else if (registered_.contains(module)) {
      scan.registered.push_back(module);
    } else {
      scan.missing.push_back(module);
    }
  }
  return scan;
}

Status AutoImporter::CheckSatisfied(std::string_view code) const {
  Result<ImportScan> scan = Scan(code);
  if (!scan.ok()) return scan.status();
  if (scan->missing.empty()) return Status::Ok();
  std::string msg = "unresolved imports:";
  for (const std::string& m : scan->missing) msg += " " + m;
  return Status::FailedPrecondition(msg);
}

}  // namespace laminar::engine
