// Workflow specifications: the JSON document a client registers and the
// execution engine enacts.
//
// In Laminar the registry stores the workflow's *Python source* and the
// engine imports it. Our C++ engine cannot import Python, so execution runs
// from a declarative spec naming built-in PE types (DESIGN.md substitution):
// the Python source still travels with every registration and feeds the
// search/recommendation pipeline; the spec is what the engine enacts.
//
// Spec shape:
// {
//   "name": "isprime_wf",
//   "pes": [ {"name": "NumberProducer", "type": "NumberProducer",
//             "params": {"seed": 42, "lo": 1, "hi": 1000}}, ... ],
//   "edges": [ {"from": "NumberProducer", "to": "IsPrime",
//               "grouping": "shuffle"},
//              {"from": "IsPrime", "to": "PrintPrime",
//               "grouping": "group_by", "key": "word"} ]
// }
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "common/value.hpp"
#include "dataflow/graph.hpp"

namespace laminar::engine {

/// Instantiates a built-in PE by type name with a params object. Central
/// factory for every PE in dataflow/pe_library.hpp.
Result<std::unique_ptr<dataflow::ProcessingElement>> CreatePe(
    const std::string& type, const Value& params);

/// Known PE type names (for the CLI's help and validation errors).
std::vector<std::string> KnownPeTypes();

/// Builds an executable graph from a spec document.
Result<dataflow::WorkflowGraph> BuildGraph(const Value& spec);

/// Parses the grouping fields of an edge object.
Result<dataflow::Grouping> ParseGrouping(const Value& edge);

}  // namespace laminar::engine
