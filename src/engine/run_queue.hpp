// Bounded, tenant-fair admission queue in front of the execution engine
// (ROADMAP item 3). /execute used to dispatch straight into
// ExecutionEngine::Execute, whose only back-pressure was the warm-instance
// pool: a single flooding caller could park every request thread and starve
// all other callers. FairRunQueue replaces that unmanaged dispatch with an
// explicit run queue:
//
//  - a fixed number of run slots (ServerConfig::run_workers) bounds
//    concurrent enactments;
//  - waiters are scheduled with start-time fair queuing across tenants:
//    each tenant carries a virtual time advanced by 1/weight per grant, and
//    the dispatcher always grants the eligible tenant with the smallest
//    virtual time — a tenant that floods only ever pushes its own virtual
//    time ahead, so well-behaved tenants keep their share of slots;
//  - within one tenant, waiters order by (priority desc, deadline asc,
//    FIFO), so urgent runs overtake background ones;
//  - per-tenant concurrency caps and queue-depth caps reject at enqueue
//    time with kResourceExhausted (HTTP 429 + retry hint) instead of
//    parking unbounded work, and a waiter whose run deadline expires while
//    still queued returns kDeadlineExceeded (HTTP 408) without ever
//    occupying a slot.
//
// Grants are RAII tickets; every exit path of the run releases its slot.
// Per-tenant telemetry: laminar_tenant_runs_total{tenant=,outcome=},
// laminar_tenant_queue_wait_ms{tenant=}, laminar_tenant_runs_running /
// laminar_tenant_runs_queued gauges. Tenant names must be validated by the
// caller (the server does) — they become metric label values.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace laminar::engine {

/// Per-tenant scheduling snapshot for /stats.
struct TenantQueueStats {
  uint64_t admitted = 0;          ///< granted a slot (includes still running)
  uint64_t rejected = 0;          ///< queue/cap overflow (HTTP 429)
  uint64_t deadline_expired = 0;  ///< deadline passed while queued (HTTP 408)
  int running = 0;
  int queued = 0;
  double vtime = 0.0;  ///< fair-share virtual time (diagnostics)
};

class FairRunQueue {
 public:
  /// `slots`: concurrent grants (clamped to >= 1).
  /// `max_queue_depth`: global queued-waiter cap, 0 = unlimited.
  explicit FairRunQueue(int slots, size_t max_queue_depth = 0);
  ~FairRunQueue();
  FairRunQueue(const FairRunQueue&) = delete;
  FairRunQueue& operator=(const FairRunQueue&) = delete;

  /// RAII slot grant; destruction (or Release) frees the slot and wakes the
  /// dispatcher. Movable, not copyable.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();
    bool valid() const { return queue_ != nullptr; }

   private:
    friend class FairRunQueue;
    Ticket(FairRunQueue* queue, std::string tenant)
        : queue_(queue), tenant_(std::move(tenant)) {}
    FairRunQueue* queue_ = nullptr;
    std::string tenant_;
  };

  struct AcquireOptions {
    double weight = 1.0;      ///< fair-share weight (clamped to >= 1e-3)
    int max_concurrent = 0;   ///< per-tenant running cap, 0 = unlimited
    int max_queued = 0;       ///< per-tenant queued cap, 0 = unlimited
    int priority = 0;         ///< higher dispatches first within the tenant
    int64_t deadline_us = 0;  ///< absolute NowMicros() deadline, 0 = none
  };

  /// Blocks until a slot is granted, the deadline passes
  /// (kDeadlineExceeded), or a depth cap rejects immediately
  /// (kResourceExhausted; `retry_after_ms`, when non-null, receives a
  /// back-off hint on rejection).
  Result<Ticket> Acquire(const std::string& tenant,
                         const AcquireOptions& options,
                         double* retry_after_ms = nullptr);

  int slots() const { return slots_; }
  size_t queued() const;
  /// Per-tenant counters/occupancy for the /stats tenants block.
  std::map<std::string, TenantQueueStats> Snapshot() const;

 private:
  struct Waiter {
    int priority = 0;
    int64_t deadline_us = 0;
    uint64_t seq = 0;
    bool granted = false;
    std::condition_variable cv;
  };

  struct TenantState {
    double weight = 1.0;
    int max_concurrent = 0;  ///< latest cap supplied via AcquireOptions
    double vtime = 0.0;
    int running = 0;
    std::vector<Waiter*> waiters;  ///< arrival order; selection scans
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t deadline_expired = 0;
  };

  /// Grants free slots to the best (tenant, waiter) pairs. Caller holds mu_.
  void DispatchLocked();
  /// Best waiter within one tenant: priority desc, deadline asc (0 = none,
  /// sorts last), then FIFO. Caller holds mu_.
  static size_t BestWaiterIndexLocked(const TenantState& tenant);
  void ReleaseSlot(const std::string& tenant);

  const int slots_;
  const size_t max_queue_depth_;
  mutable std::mutex mu_;
  std::map<std::string, TenantState> tenants_;
  int in_use_ = 0;
  size_t total_queued_ = 0;
  double vclock_ = 0.0;  ///< virtual start tag of the latest grant
  uint64_t next_seq_ = 0;
};

}  // namespace laminar::engine
