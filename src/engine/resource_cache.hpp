// Engine-side resource cache (paper §IV-F).
//
// Laminar 1.0 serialized a resources/ directory into every execution
// request; 2.0 sends a *list of required resources*, the engine answers with
// the ones it is missing, the client uploads only those (multipart), and a
// cache avoids retransmitting large files on subsequent runs. Entries are
// content-addressed: (name, content-hash), so a changed file re-uploads.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace laminar::engine {

struct ResourceRef {
  std::string name;
  uint64_t content_hash = 0;
};

/// Stable content hash used by both client and engine sides.
uint64_t HashResourceContent(std::string_view content);

struct ResourceCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t bytes_stored = 0;
  uint64_t evictions = 0;
};

class ResourceCache {
 public:
  /// max_bytes == 0 means unlimited.
  explicit ResourceCache(uint64_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Returns the subset of refs not present with a matching content hash.
  std::vector<ResourceRef> Missing(const std::vector<ResourceRef>& refs) const;

  /// Stores a resource (LRU eviction under the byte budget).
  void Put(const std::string& name, std::string content);

  std::optional<std::string> Get(const std::string& name) const;
  bool Has(const ResourceRef& ref) const;
  void Clear();
  ResourceCacheStats stats() const;

 private:
  struct Entry {
    std::string content;
    uint64_t hash;
    uint64_t last_used;
  };
  void EvictIfNeeded();

  mutable std::mutex mu_;
  uint64_t max_bytes_;
  uint64_t clock_ = 0;
  uint64_t stored_bytes_ = 0;
  std::unordered_map<std::string, Entry> entries_;
  mutable ResourceCacheStats stats_;
};

}  // namespace laminar::engine
