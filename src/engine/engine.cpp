#include "engine/engine.hpp"

#include <thread>

#include "common/clock.hpp"
#include "common/concurrent_queue.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/sequential_mapping.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::engine {
namespace {

/// Registry handles for every engine metric, resolved once per process.
/// Counters/gauges are process-wide: multiple engines (tests, benches)
/// aggregate into the same series, exactly like multiple function instances
/// reporting to one scrape endpoint.
struct EngineMetrics {
  telemetry::Counter& exec_ok;
  telemetry::Counter& exec_error;
  telemetry::Counter& cold_starts;
  telemetry::Counter& tuples;
  telemetry::Counter& lines;
  telemetry::Histogram& cold_start_ms;
  telemetry::Histogram& run_ms;
  telemetry::Gauge& warm;
  telemetry::Gauge& running;

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = [] {
      auto& reg = telemetry::MetricsRegistry::Global();
      return new EngineMetrics{
          reg.GetCounter("laminar_engine_executions_total", "result=\"ok\""),
          reg.GetCounter("laminar_engine_executions_total",
                         "result=\"error\""),
          reg.GetCounter("laminar_engine_cold_starts_total"),
          reg.GetCounter("laminar_engine_tuples_total"),
          reg.GetCounter("laminar_engine_output_lines_total"),
          reg.GetHistogram("laminar_engine_cold_start_ms"),
          reg.GetHistogram("laminar_engine_run_ms"),
          reg.GetGauge("laminar_engine_warm_instances"),
          reg.GetGauge("laminar_engine_running_executions")};
    }();
    return *metrics;
  }
};

}  // namespace

Value ExecutionTotalsJson() {
  EngineMetrics& em = EngineMetrics::Get();
  const uint64_t ok = em.exec_ok.Value();
  const uint64_t error = em.exec_error.Value();
  Value v = Value::MakeObject();
  v["executionsTotal"] = static_cast<int64_t>(ok + error);
  v["executionsOk"] = static_cast<int64_t>(ok);
  v["executionsError"] = static_cast<int64_t>(error);
  v["coldStartsTotal"] = static_cast<int64_t>(em.cold_starts.Value());
  v["tuplesTotal"] = static_cast<int64_t>(em.tuples.Value());
  v["linesTotal"] = static_cast<int64_t>(em.lines.Value());
  const telemetry::Histogram::Snapshot run = em.run_ms.snapshot();
  v["runMsP50"] = run.Percentile(0.50);
  v["runMsP95"] = run.Percentile(0.95);
  v["runMsP99"] = run.Percentile(0.99);
  const telemetry::Histogram::Snapshot cold = em.cold_start_ms.snapshot();
  v["coldStartSamples"] = static_cast<int64_t>(cold.count);
  v["coldStartMsP95"] = cold.Percentile(0.95);
  return v;
}

ExecutionEngine::ExecutionEngine(EngineConfig config)
    : config_(config), cache_(config.resource_cache_bytes) {}

ExecutionEngine::~ExecutionEngine() { broker_.Shutdown(); }

std::vector<ResourceRef> ExecutionEngine::MissingResources(
    const std::vector<ResourceRef>& refs) const {
  return cache_.Missing(refs);
}

void ExecutionEngine::PutResource(const std::string& name,
                                  std::string content) {
  cache_.Put(name, std::move(content));
}

bool ExecutionEngine::AcquireInstance() {
  std::unique_lock lock(pool_mu_);
  pool_cv_.wait(lock, [&] { return running_ < config_.max_concurrent; });
  ++running_;
  EngineMetrics::Get().running.Add(1);
  if (warm_ > 0) {
    --warm_;
    EngineMetrics::Get().warm.Add(-1);
    return false;  // reused a warm instance
  }
  return true;  // cold start
}

void ExecutionEngine::ReleaseInstance() {
  {
    std::scoped_lock lock(pool_mu_);
    --running_;
    EngineMetrics::Get().running.Add(-1);
    if (warm_ < config_.max_warm_instances) {
      ++warm_;
      EngineMetrics::Get().warm.Add(1);
    }
  }
  pool_cv_.notify_one();
}

int ExecutionEngine::warm_instances() const {
  std::scoped_lock lock(pool_mu_);
  return warm_;
}

Result<dataflow::RunResult> ExecutionEngine::Execute(
    const ExecuteRequest& request, const dataflow::LineSink& sink,
    ExecuteStats* stats) {
  EngineMetrics& em = EngineMetrics::Get();
  telemetry::ScopedSpan exec_span("engine.execute");
  // Every exit increments exactly one result-labelled execution counter.
  bool succeeded = false;
  struct CountResult {
    EngineMetrics& em;
    bool* succeeded;
    ~CountResult() { (*succeeded ? em.exec_ok : em.exec_error).Inc(); }
  } count_result{em, &succeeded};

  // Resource gate (§IV-F): refuse with the missing list encoded in the
  // message; the server layer turns this into a "resources" response.
  std::vector<ResourceRef> missing = MissingResources(request.resources);
  if (!missing.empty()) {
    std::string msg = "missing resources:";
    for (const ResourceRef& r : missing) msg += " " + r.name;
    return Status::FailedPrecondition(msg);
  }
  // Import gate: every dependency of the registered code must resolve.
  if (!request.workflow_code.empty()) {
    Status st = importer_.CheckSatisfied(request.workflow_code);
    if (!st.ok()) return st;
  }
  Result<dataflow::WorkflowGraph> graph = BuildGraph(request.workflow_spec);
  if (!graph.ok()) return graph.status();

  bool cold = AcquireInstance();
  struct Release {
    ExecutionEngine* engine;
    ~Release() { engine->ReleaseInstance(); }
  } release{this};

  if (cold) {
    em.cold_starts.Inc();
    telemetry::ScopedSpan cold_span("engine.cold_start", &em.cold_start_ms);
    if (config_.cold_start_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config_.cold_start_ms));
    }
  }

  dataflow::RunOptions run_options = request.run_options;
  // Written as !(x > 0) so a NaN deadline (library callers bypass the
  // server's 400 validation) also falls back to the engine default instead
  // of slipping through the <= comparison.
  if (!(run_options.deadline_ms > 0) && config_.max_execution_ms > 0) {
    run_options.deadline_ms = config_.max_execution_ms;
  }

  std::unique_ptr<dataflow::Mapping> mapping;
  if (request.mapping == "simple") {
    mapping = std::make_unique<dataflow::SequentialMapping>();
  } else if (request.mapping == "multi") {
    mapping = std::make_unique<dataflow::MultiMapping>();
  } else if (request.mapping == "dynamic") {
    mapping = std::make_unique<dataflow::DynamicMapping>(&broker_);
  } else {
    return Status::InvalidArgument("unknown mapping '" + request.mapping +
                                   "'");
  }

  // §IV-E true-streaming: the mapping's emitter threads push lines into a
  // concurrent queue; a dedicated drainer forwards them to the transport
  // sink in order, so slow network writes never block PE threads.
  laminar::ConcurrentQueue<std::string> stdout_queue;
  std::thread drainer;
  dataflow::LineSink queue_sink;
  if (sink) {
    queue_sink = [&stdout_queue](const std::string& line) {
      stdout_queue.Push(line);
    };
    drainer = std::thread([&stdout_queue, &sink] {
      while (auto line = stdout_queue.Pop()) sink(*line);
    });
  }

  Stopwatch watch;
  dataflow::RunResult result;
  {
    telemetry::ScopedSpan enact_span("engine.mapping_enact", &em.run_ms);
    result = mapping->Execute(graph.value(), run_options,
                              sink ? queue_sink : nullptr);
  }
  double run_ms = watch.ElapsedMillis();

  stdout_queue.Close();
  if (drainer.joinable()) drainer.join();

  em.tuples.Inc(result.tuples_processed);
  em.lines.Inc(result.output_lines.size());

  if (stats != nullptr) {
    stats->cold_start = cold;
    stats->cold_start_ms = cold ? config_.cold_start_ms : 0.0;
    stats->run_ms = run_ms;
    stats->tuples = result.tuples_processed;
    stats->lines = result.output_lines.size();
    stats->peak_workers = result.peak_workers;
    stats->failed_tuples = result.failed_tuples;
    stats->retries = result.retries;
    stats->dlq_depth = result.dlq_depth;
    stats->error_samples = result.error_samples;
  }
  if (!result.status.ok()) return result.status;
  succeeded = true;
  return result;
}

}  // namespace laminar::engine
