#include "engine/workflow_spec.hpp"

#include <unordered_map>

#include "dataflow/pe_library.hpp"

namespace laminar::engine {

using dataflow::ProcessingElement;

Result<std::unique_ptr<ProcessingElement>> CreatePe(const std::string& type,
                                                    const Value& params) {
  std::unique_ptr<ProcessingElement> pe;
  if (type == "NumberProducer") {
    pe = std::make_unique<dataflow::NumberProducer>(
        static_cast<uint64_t>(params.GetInt("seed", 42)),
        params.GetInt("lo", 1), params.GetInt("hi", 1000));
  } else if (type == "IsPrime") {
    pe = std::make_unique<dataflow::IsPrime>();
  } else if (type == "PrintPrime") {
    pe = std::make_unique<dataflow::PrintPrime>();
  } else if (type == "LineProducer") {
    std::vector<std::string> lines;
    for (const Value& v : params.at("lines").as_array()) {
      lines.push_back(v.as_string());
    }
    pe = std::make_unique<dataflow::LineProducer>(std::move(lines));
  } else if (type == "Tokenizer") {
    pe = std::make_unique<dataflow::Tokenizer>();
  } else if (type == "WordCounter") {
    pe = std::make_unique<dataflow::WordCounter>();
  } else if (type == "CountPrinter") {
    pe = std::make_unique<dataflow::CountPrinter>();
  } else if (type == "SensorProducer") {
    pe = std::make_unique<dataflow::SensorProducer>(
        static_cast<uint64_t>(params.GetInt("seed", 7)),
        params.GetDouble("anomaly_rate", 0.05));
  } else if (type == "NormalizeData") {
    pe = std::make_unique<dataflow::NormalizeData>(
        params.GetDouble("min", -20.0), params.GetDouble("max", 60.0));
  } else if (type == "AnomalyDetector") {
    pe = std::make_unique<dataflow::AnomalyDetector>(
        params.GetDouble("threshold", 3.0),
        static_cast<size_t>(params.GetInt("window", 64)));
  } else if (type == "Alerter") {
    pe = std::make_unique<dataflow::Alerter>();
  } else if (type == "AggregateData") {
    pe = std::make_unique<dataflow::AggregateData>(
        params.GetString("field", "temperature"));
  } else if (type == "CpuBurn") {
    pe = std::make_unique<dataflow::CpuBurn>(
        static_cast<uint64_t>(params.GetInt("iters", 200000)));
  } else if (type == "IoWait") {
    pe = std::make_unique<dataflow::IoWait>(params.GetInt("millis", 1));
  } else if (type == "ThresholdSplitter") {
    pe = std::make_unique<dataflow::ThresholdSplitter>(
        params.GetString("field", "value"),
        params.GetDouble("threshold", 0.0));
  } else if (type == "FaultInjector") {
    pe = std::make_unique<dataflow::FaultInjector>(
        params.GetInt("every_n", 2), params.GetInt("heal_after", 0));
  } else if (type == "EchoSink") {
    pe = std::make_unique<dataflow::EchoSink>();
  } else if (type == "NullSink") {
    pe = std::make_unique<dataflow::NullSink>();
  } else {
    return Status::InvalidArgument("unknown PE type '" + type + "'");
  }
  return pe;
}

std::vector<std::string> KnownPeTypes() {
  return {"NumberProducer", "IsPrime",       "PrintPrime",   "LineProducer",
          "Tokenizer",      "WordCounter",   "CountPrinter", "SensorProducer",
          "NormalizeData",  "AnomalyDetector", "Alerter",    "AggregateData",
          "CpuBurn",        "NullSink",       "EchoSink",     "ThresholdSplitter",
          "FaultInjector",  "IoWait"};
}

Result<dataflow::Grouping> ParseGrouping(const Value& edge) {
  std::string g = edge.GetString("grouping", "shuffle");
  if (g == "shuffle") return dataflow::Grouping::Shuffle();
  if (g == "group_by") {
    std::string key = edge.GetString("key");
    if (key.empty()) {
      return Status::InvalidArgument("group_by edge requires a 'key'");
    }
    return dataflow::Grouping::GroupBy(key);
  }
  if (g == "one_to_all") return dataflow::Grouping::OneToAll();
  if (g == "all_to_one") return dataflow::Grouping::AllToOne();
  return Status::InvalidArgument("unknown grouping '" + g + "'");
}

Result<dataflow::WorkflowGraph> BuildGraph(const Value& spec) {
  if (!spec.is_object()) {
    return Status::InvalidArgument("workflow spec must be a JSON object");
  }
  dataflow::WorkflowGraph graph(spec.GetString("name", "workflow"));
  std::unordered_map<std::string, size_t> by_name;
  for (const Value& pe_spec : spec.at("pes").as_array()) {
    std::string name = pe_spec.GetString("name");
    std::string type = pe_spec.GetString("type", name);
    if (name.empty()) {
      return Status::InvalidArgument("PE spec missing 'name'");
    }
    if (by_name.contains(name)) {
      return Status::InvalidArgument("duplicate PE name '" + name + "'");
    }
    Result<std::unique_ptr<dataflow::ProcessingElement>> pe =
        CreatePe(type, pe_spec.at("params"));
    if (!pe.ok()) return pe.status();
    pe.value()->set_name(name);
    by_name[name] = graph.Add(std::move(pe.value()));
  }
  for (const Value& edge : spec.at("edges").as_array()) {
    auto from = by_name.find(edge.GetString("from"));
    auto to = by_name.find(edge.GetString("to"));
    if (from == by_name.end() || to == by_name.end()) {
      return Status::InvalidArgument("edge references unknown PE");
    }
    Result<dataflow::Grouping> grouping = ParseGrouping(edge);
    if (!grouping.ok()) return grouping.status();
    std::string out_port =
        edge.GetString("from_port", std::string(dataflow::kDefaultOutput));
    std::string in_port =
        edge.GetString("to_port", std::string(dataflow::kDefaultInput));
    Status st = graph.Connect(from->second, out_port, to->second, in_port,
                              std::move(grouping.value()));
    if (!st.ok()) return st;
  }
  Status st = graph.Validate();
  if (!st.ok()) return st;
  return graph;
}

}  // namespace laminar::engine
