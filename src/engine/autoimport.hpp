// Auto-import dependency management (paper §III: the execution engine
// "supports auto-import mechanisms for dependency management").
//
// Scans registered Python code for import statements and resolves each
// module against (a) an allow-list modelling the engine's pre-installed
// site-packages and (b) modules registered in this engine (other PEs).
// Unresolvable imports are reported back before execution rather than
// failing mid-run.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace laminar::engine {

struct ImportScan {
  /// Top-level modules imported by the code (deduplicated, source order).
  std::vector<std::string> imports;
  /// Imports satisfied by the preinstalled allow-list.
  std::vector<std::string> preinstalled;
  /// Imports satisfied by registered modules.
  std::vector<std::string> registered;
  /// Imports nothing can satisfy.
  std::vector<std::string> missing;
};

class AutoImporter {
 public:
  AutoImporter();

  /// Adds a module name the engine can now satisfy (e.g. a registered PE
  /// module or an uploaded resource package).
  void RegisterModule(const std::string& module);

  /// Extends the preinstalled allow-list (engine configuration).
  void AddPreinstalled(const std::string& module);

  /// Parses `code` (leniently) and classifies every import.
  Result<ImportScan> Scan(std::string_view code) const;

  /// Convenience: Ok iff Scan succeeds with no missing imports.
  Status CheckSatisfied(std::string_view code) const;

 private:
  std::set<std::string> preinstalled_;
  std::set<std::string> registered_;
};

}  // namespace laminar::engine
