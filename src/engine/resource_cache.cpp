#include "engine/resource_cache.hpp"

#include <algorithm>

#include "common/hashing.hpp"

namespace laminar::engine {

uint64_t HashResourceContent(std::string_view content) {
  return hashing::Fnv1a64(content);
}

std::vector<ResourceRef> ResourceCache::Missing(
    const std::vector<ResourceRef>& refs) const {
  std::scoped_lock lock(mu_);
  std::vector<ResourceRef> missing;
  for (const ResourceRef& ref : refs) {
    auto it = entries_.find(ref.name);
    if (it != entries_.end() && it->second.hash == ref.content_hash) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
      missing.push_back(ref);
    }
  }
  return missing;
}

void ResourceCache::Put(const std::string& name, std::string content) {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    stored_bytes_ -= it->second.content.size();
    entries_.erase(it);
  }
  stored_bytes_ += content.size();
  uint64_t hash = HashResourceContent(content);
  entries_[name] = Entry{std::move(content), hash, ++clock_};
  stats_.bytes_stored = stored_bytes_;
  EvictIfNeeded();
}

std::optional<std::string> ResourceCache::Get(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return it->second.content;
}

bool ResourceCache::Has(const ResourceRef& ref) const {
  std::scoped_lock lock(mu_);
  auto it = entries_.find(ref.name);
  return it != entries_.end() && it->second.hash == ref.content_hash;
}

void ResourceCache::Clear() {
  std::scoped_lock lock(mu_);
  entries_.clear();
  stored_bytes_ = 0;
  stats_.bytes_stored = 0;
}

ResourceCacheStats ResourceCache::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

void ResourceCache::EvictIfNeeded() {
  if (max_bytes_ == 0) return;
  while (stored_bytes_ > max_bytes_ && !entries_.empty()) {
    auto oldest = std::min_element(
        entries_.begin(), entries_.end(), [](const auto& a, const auto& b) {
          return a.second.last_used < b.second.last_used;
        });
    stored_bytes_ -= oldest->second.content.size();
    entries_.erase(oldest);
    ++stats_.evictions;
    stats_.bytes_stored = stored_bytes_;
  }
}

}  // namespace laminar::engine
