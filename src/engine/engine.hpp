// The serverless execution engine (paper §III, §IV-E/F).
//
// Runs workflows "serverlessly": each execution acquires a function
// instance from a warm pool (cold starts are simulated with a configurable
// delay — the classic serverless cost the paper's Background §II-B names),
// verifies resources against the content-addressed cache, checks imports,
// enacts the workflow under the requested mapping, and streams stdout line
// by line through a concurrent queue to whatever sink the transport layer
// provides — exactly the Flask-response-streaming structure of §IV-E.
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "common/status.hpp"
#include "common/value.hpp"
#include "dataflow/mapping.hpp"
#include "engine/autoimport.hpp"
#include "engine/resource_cache.hpp"
#include "engine/workflow_spec.hpp"

namespace laminar::engine {

struct EngineConfig {
  /// Simulated container cold-start latency (milliseconds). 0 in unit tests.
  double cold_start_ms = 100.0;
  /// Warm instances kept alive between executions.
  int max_warm_instances = 4;
  /// Upper bound on concurrent executions (requests beyond it queue).
  int max_concurrent = 8;
  /// Resource cache budget (0 = unlimited).
  uint64_t resource_cache_bytes = 0;
  /// Default serverless execution duration limit applied to every run that
  /// does not set its own RunOptions::deadline_ms (0 = unlimited).
  double max_execution_ms = 0.0;
};

struct ExecuteRequest {
  Value workflow_spec;                  ///< see workflow_spec.hpp
  std::string workflow_code;            ///< Python source (import checking)
  std::string mapping = "simple";       ///< simple | multi | dynamic
  dataflow::RunOptions run_options;
  std::vector<ResourceRef> resources;   ///< required resources
};

struct ExecuteStats {
  bool cold_start = false;
  double cold_start_ms = 0.0;
  double run_ms = 0.0;
  uint64_t tuples = 0;
  uint64_t lines = 0;
  int peak_workers = 0;
  /// Fault containment (see RunResult): populated even when Execute
  /// returns an error status, so the transport layer can report a
  /// structured partial-failure summary instead of dropping the run.
  uint64_t failed_tuples = 0;
  uint64_t retries = 0;
  uint64_t dlq_depth = 0;
  std::vector<std::string> error_samples;
};

/// Process-wide cumulative execution numbers read straight from the
/// telemetry registry (laminar_engine_*). Both the /execute ##END## stats
/// chunk and the /stats endpoint render this same object, so streamed stats
/// and polled stats can never disagree.
Value ExecutionTotalsJson();

class ExecutionEngine {
 public:
  explicit ExecutionEngine(EngineConfig config = {});
  ~ExecutionEngine();

  /// Step 1 of the §IV-F protocol: which of these resources must the client
  /// upload before Execute will run?
  std::vector<ResourceRef> MissingResources(
      const std::vector<ResourceRef>& refs) const;

  /// Step 2: accept an uploaded resource.
  void PutResource(const std::string& name, std::string content);

  /// Executes a workflow, streaming stdout lines into `sink` as they are
  /// produced (sink may be null). Fails fast with kFailedPrecondition if
  /// resources are missing or imports cannot be satisfied.
  Result<dataflow::RunResult> Execute(const ExecuteRequest& request,
                                      const dataflow::LineSink& sink = nullptr,
                                      ExecuteStats* stats = nullptr);

  AutoImporter& auto_importer() { return importer_; }
  ResourceCache& resource_cache() { return cache_; }
  broker::Broker& broker() { return broker_; }
  const EngineConfig& config() const { return config_; }

  /// Warm instances currently pooled (tests/benches).
  int warm_instances() const;

 private:
  /// Blocks until an instance is available; returns whether it was cold.
  bool AcquireInstance();
  void ReleaseInstance();

  EngineConfig config_;
  ResourceCache cache_;
  AutoImporter importer_;
  broker::Broker broker_;

  mutable std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  int warm_ = 0;      ///< idle warm instances
  int running_ = 0;   ///< executions in flight
};

}  // namespace laminar::engine
