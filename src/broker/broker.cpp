#include "broker/broker.hpp"

#include <algorithm>

namespace laminar::broker {
namespace {

telemetry::Counter& OpCounter(const char* op) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_broker_ops_total", std::string("op=\"") + op + "\"");
}

}  // namespace

Broker::Broker()
    : c_gets_(OpCounter("get")),
      c_sets_(OpCounter("set")),
      c_pushes_(OpCounter("push")),
      c_pops_(OpCounter("pop")),
      c_blocked_pops_(OpCounter("blocked_pop")),
      c_publishes_(OpCounter("publish")) {}

void Broker::Set(const std::string& key, std::string value) {
  std::scoped_lock lock(mu_);
  strings_[key] = std::move(value);
  ++stats_.sets;
  c_sets_.Inc();
}

std::optional<std::string> Broker::Get(const std::string& key) const {
  std::scoped_lock lock(mu_);
  ++stats_.gets;
  c_gets_.Inc();
  auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

bool Broker::Del(const std::string& key) {
  std::scoped_lock lock(mu_);
  return strings_.erase(key) + hashes_.erase(key) + lists_.erase(key) > 0;
}

size_t Broker::DelPrefix(const std::string& prefix) {
  std::scoped_lock lock(mu_);
  auto erase_matching = [&](auto& map) {
    size_t n = 0;
    for (auto it = map.begin(); it != map.end();) {
      if (it->first.starts_with(prefix)) {
        it = map.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  };
  return erase_matching(strings_) + erase_matching(hashes_) +
         erase_matching(lists_);
}

size_t Broker::KeyCount(const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  auto count_matching = [&](const auto& map) {
    size_t n = 0;
    for (const auto& [key, unused] : map) {
      if (key.starts_with(prefix)) ++n;
    }
    return n;
  };
  return count_matching(strings_) + count_matching(hashes_) +
         count_matching(lists_);
}

bool Broker::Exists(const std::string& key) const {
  std::scoped_lock lock(mu_);
  return strings_.contains(key) || hashes_.contains(key) ||
         lists_.contains(key);
}

int64_t Broker::Incr(const std::string& key, int64_t delta) {
  std::scoped_lock lock(mu_);
  auto it = strings_.find(key);
  int64_t value = 0;
  if (it != strings_.end()) {
    value = std::strtoll(it->second.c_str(), nullptr, 10);
  }
  value += delta;
  strings_[key] = std::to_string(value);
  ++stats_.sets;
  c_sets_.Inc();
  return value;
}

void Broker::HSet(const std::string& key, const std::string& field,
                  std::string value) {
  std::scoped_lock lock(mu_);
  hashes_[key][field] = std::move(value);
  ++stats_.sets;
  c_sets_.Inc();
}

std::optional<std::string> Broker::HGet(const std::string& key,
                                        const std::string& field) const {
  std::scoped_lock lock(mu_);
  ++stats_.gets;
  c_gets_.Inc();
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return std::nullopt;
  auto fit = it->second.find(field);
  if (fit == it->second.end()) return std::nullopt;
  return fit->second;
}

std::unordered_map<std::string, std::string> Broker::HGetAll(
    const std::string& key) const {
  std::scoped_lock lock(mu_);
  ++stats_.gets;
  c_gets_.Inc();
  auto it = hashes_.find(key);
  return it == hashes_.end()
             ? std::unordered_map<std::string, std::string>{}
             : it->second;
}

bool Broker::HDel(const std::string& key, const std::string& field) {
  std::scoped_lock lock(mu_);
  auto it = hashes_.find(key);
  if (it == hashes_.end()) return false;
  return it->second.erase(field) > 0;
}

size_t Broker::RPush(const std::string& key, std::string value) {
  size_t len;
  {
    std::scoped_lock lock(mu_);
    auto& list = lists_[key];
    list.push_back(std::move(value));
    len = list.size();
    ++stats_.pushes;
    c_pushes_.Inc();
  }
  list_cv_.notify_all();
  return len;
}

std::optional<std::string> Broker::LPop(const std::string& key) {
  std::scoped_lock lock(mu_);
  auto it = lists_.find(key);
  if (it == lists_.end() || it->second.empty()) return std::nullopt;
  std::string value = std::move(it->second.front());
  it->second.pop_front();
  ++stats_.pops;
  c_pops_.Inc();
  return value;
}

std::optional<std::pair<std::string, std::string>> Broker::BLPop(
    const std::vector<std::string>& keys, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  auto try_pop = [&]() -> std::optional<std::pair<std::string, std::string>> {
    for (const std::string& key : keys) {
      auto it = lists_.find(key);
      if (it != lists_.end() && !it->second.empty()) {
        std::string value = std::move(it->second.front());
        it->second.pop_front();
        ++stats_.pops;
        c_pops_.Inc();
        return std::make_pair(key, std::move(value));
      }
    }
    return std::nullopt;
  };

  if (auto hit = try_pop()) return hit;
  ++stats_.blocked_pops;
  c_blocked_pops_.Inc();
  auto ready = [&] {
    if (shutdown_) return true;
    for (const std::string& key : keys) {
      auto it = lists_.find(key);
      if (it != lists_.end() && !it->second.empty()) return true;
    }
    return false;
  };
  // The deadline is absolute, computed once: losing a pop race to another
  // consumer must never re-arm the full timeout, so a 20 ms pop stays a
  // 20 ms pop no matter how contended the queue is.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    if (timeout.count() == 0) {
      list_cv_.wait(lock, ready);
    } else if (!list_cv_.wait_until(lock, deadline, ready)) {
      return std::nullopt;  // timed out
    }
    if (auto hit = try_pop()) return hit;
    if (shutdown_) return std::nullopt;
    // Spurious wake or another consumer won the race; keep waiting
    // against the same deadline.
  }
}

size_t Broker::LLen(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = lists_.find(key);
  return it == lists_.end() ? 0 : it->second.size();
}

size_t Broker::TotalQueued(const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  size_t total = 0;
  for (const auto& [key, list] : lists_) {
    if (key.starts_with(prefix)) total += list.size();
  }
  return total;
}

uint64_t Broker::Subscribe(const std::string& channel,
                           std::function<void(const std::string&)> callback) {
  std::scoped_lock lock(mu_);
  uint64_t id = next_subscription_id_++;
  subscribers_.push_back(Subscriber{id, channel, std::move(callback)});
  return id;
}

void Broker::Unsubscribe(uint64_t subscription_id) {
  std::scoped_lock lock(mu_);
  std::erase_if(subscribers_,
                [&](const Subscriber& s) { return s.id == subscription_id; });
}

size_t Broker::Publish(const std::string& channel, const std::string& message) {
  // Copy callbacks out so user code runs without holding the broker lock
  // (it may call back into the broker).
  std::vector<std::function<void(const std::string&)>> targets;
  {
    std::scoped_lock lock(mu_);
    ++stats_.publishes;
    c_publishes_.Inc();
    for (const Subscriber& s : subscribers_) {
      if (s.channel == channel) targets.push_back(s.callback);
    }
  }
  for (auto& cb : targets) cb(message);
  return targets.size();
}

void Broker::Shutdown() {
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  list_cv_.notify_all();
}

bool Broker::shut_down() const {
  std::scoped_lock lock(mu_);
  return shutdown_;
}

void Broker::FlushAll() {
  std::scoped_lock lock(mu_);
  strings_.clear();
  hashes_.clear();
  lists_.clear();
}

BrokerStats Broker::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace laminar::broker
