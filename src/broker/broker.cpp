#include "broker/broker.hpp"

#include <algorithm>

#include "common/hashing.hpp"

namespace laminar::broker {
namespace {

telemetry::Counter& OpCounter(const char* op) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_broker_ops_total", std::string("op=\"") + op + "\"");
}

telemetry::Counter& BatchCounter(const char* name, const char* op) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      name, std::string("op=\"") + op + "\"");
}

}  // namespace

Broker::Broker()
    : c_gets_(OpCounter("get")),
      c_sets_(OpCounter("set")),
      c_pushes_(OpCounter("push")),
      c_pops_(OpCounter("pop")),
      c_blocked_pops_(OpCounter("blocked_pop")),
      c_publishes_(OpCounter("publish")),
      c_batch_push_ops_(
          BatchCounter("laminar_broker_batch_ops_total", "push_multi")),
      c_batch_push_items_(
          BatchCounter("laminar_broker_batch_items_total", "push_multi")),
      c_batch_pop_ops_(
          BatchCounter("laminar_broker_batch_ops_total", "pop_up_to")),
      c_batch_pop_items_(
          BatchCounter("laminar_broker_batch_items_total", "pop_up_to")),
      c_scan_keys_(telemetry::MetricsRegistry::Global().GetCounter(
          "laminar_broker_scan_keys_total")) {}

size_t Broker::ShardIndex(const std::string& key) {
  // splitmix finalizer decorrelates the structured "wf:N:q:i" key families
  // the dynamic mapping generates, so one run's queues spread over shards.
  return hashing::SplitMix64(hashing::Fnv1a64(key)) & (kShards - 1);
}

void Broker::SignalWatchersLocked(Shard& shard, const std::string& key,
                                  size_t max_waiters) {
  size_t signaled = 0;
  for (auto& [waiter, watched] : shard.waiters) {
    if (signaled >= max_waiters) break;
    bool watches = std::any_of(
        watched.begin(), watched.end(),
        [&](const std::string* k) { return *k == key; });
    if (!watches) continue;
    std::scoped_lock waiter_lock(waiter->mu);
    if (waiter->signaled) continue;  // already owes a wake; skip, keep count
    waiter->signaled = true;
    waiter->cv.notify_one();
    ++signaled;
  }
}

void Broker::Set(const std::string& key, std::string value) {
  Shard& shard = ShardFor(key);
  {
    std::scoped_lock lock(shard.mu);
    shard.strings[key] = std::move(value);
  }
  stats_.sets.fetch_add(1, std::memory_order_relaxed);
  c_sets_.Inc();
}

std::optional<std::string> Broker::Get(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  c_gets_.Inc();
  std::scoped_lock lock(shard.mu);
  auto it = shard.strings.find(key);
  if (it == shard.strings.end()) return std::nullopt;
  return it->second;
}

bool Broker::Del(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::scoped_lock lock(shard.mu);
  return shard.strings.erase(key) + shard.hashes.erase(key) +
             shard.lists.erase(key) >
         0;
}

size_t Broker::DelPrefix(const std::string& prefix) {
  size_t removed = 0;
  uint64_t scanned = 0;
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    auto erase_prefix = [&](auto& map) {
      auto it = map.lower_bound(prefix);
      while (it != map.end()) {
        ++scanned;
        if (!it->first.starts_with(prefix)) break;  // sorted: no more matches
        it = map.erase(it);
        ++removed;
      }
    };
    erase_prefix(shard.strings);
    erase_prefix(shard.hashes);
    erase_prefix(shard.lists);
  }
  stats_.keys_scanned.fetch_add(scanned, std::memory_order_relaxed);
  c_scan_keys_.Inc(scanned);
  return removed;
}

size_t Broker::KeyCount(const std::string& prefix) const {
  size_t count = 0;
  uint64_t scanned = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    auto count_prefix = [&](const auto& map) {
      for (auto it = map.lower_bound(prefix); it != map.end(); ++it) {
        ++scanned;
        if (!it->first.starts_with(prefix)) break;
        ++count;
      }
    };
    count_prefix(shard.strings);
    count_prefix(shard.hashes);
    count_prefix(shard.lists);
  }
  stats_.keys_scanned.fetch_add(scanned, std::memory_order_relaxed);
  c_scan_keys_.Inc(scanned);
  return count;
}

bool Broker::Exists(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::scoped_lock lock(shard.mu);
  return shard.strings.contains(key) || shard.hashes.contains(key) ||
         shard.lists.contains(key);
}

int64_t Broker::Incr(const std::string& key, int64_t delta) {
  Shard& shard = ShardFor(key);
  int64_t value = 0;
  {
    std::scoped_lock lock(shard.mu);
    auto it = shard.strings.find(key);
    if (it != shard.strings.end()) {
      value = std::strtoll(it->second.c_str(), nullptr, 10);
    }
    value += delta;
    shard.strings[key] = std::to_string(value);
  }
  stats_.sets.fetch_add(1, std::memory_order_relaxed);
  c_sets_.Inc();
  return value;
}

void Broker::HSet(const std::string& key, const std::string& field,
                  std::string value) {
  Shard& shard = ShardFor(key);
  {
    std::scoped_lock lock(shard.mu);
    shard.hashes[key][field] = std::move(value);
  }
  stats_.sets.fetch_add(1, std::memory_order_relaxed);
  c_sets_.Inc();
}

std::optional<std::string> Broker::HGet(const std::string& key,
                                        const std::string& field) const {
  const Shard& shard = ShardFor(key);
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  c_gets_.Inc();
  std::scoped_lock lock(shard.mu);
  auto it = shard.hashes.find(key);
  if (it == shard.hashes.end()) return std::nullopt;
  auto fit = it->second.find(field);
  if (fit == it->second.end()) return std::nullopt;
  return fit->second;
}

std::unordered_map<std::string, std::string> Broker::HGetAll(
    const std::string& key) const {
  const Shard& shard = ShardFor(key);
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  c_gets_.Inc();
  std::scoped_lock lock(shard.mu);
  auto it = shard.hashes.find(key);
  return it == shard.hashes.end()
             ? std::unordered_map<std::string, std::string>{}
             : it->second;
}

bool Broker::HDel(const std::string& key, const std::string& field) {
  Shard& shard = ShardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.hashes.find(key);
  if (it == shard.hashes.end()) return false;
  return it->second.erase(field) > 0;
}

size_t Broker::RPush(const std::string& key, std::string&& value) {
  Shard& shard = ShardFor(key);
  size_t len;
  {
    std::scoped_lock lock(shard.mu);
    auto& list = shard.lists[key];
    list.push_back(std::move(value));
    len = list.size();
    SignalWatchersLocked(shard, key, 1);
  }
  stats_.pushes.fetch_add(1, std::memory_order_relaxed);
  c_pushes_.Inc();
  return len;
}

size_t Broker::RPush(const std::string& key, const std::string& value) {
  return RPush(key, std::string(value));
}

size_t Broker::RPushMulti(const std::string& key,
                          std::vector<std::string>&& values) {
  if (values.empty()) return LLen(key);
  const size_t n = values.size();
  Shard& shard = ShardFor(key);
  size_t len;
  {
    std::scoped_lock lock(shard.mu);
    auto& list = shard.lists[key];
    for (std::string& value : values) list.push_back(std::move(value));
    len = list.size();
    // One item can wake one consumer: signal at most n waiters.
    SignalWatchersLocked(shard, key, n);
  }
  values.clear();  // consumed; capacity retained for buffer reuse
  stats_.pushes.fetch_add(n, std::memory_order_relaxed);
  stats_.batch_pushes.fetch_add(1, std::memory_order_relaxed);
  c_pushes_.Inc(n);
  c_batch_push_ops_.Inc();
  c_batch_push_items_.Inc(n);
  return len;
}

std::optional<std::string> Broker::LPop(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.lists.find(key);
  if (it == shard.lists.end() || it->second.empty()) return std::nullopt;
  std::string value = std::move(it->second.front());
  it->second.pop_front();
  stats_.pops.fetch_add(1, std::memory_order_relaxed);
  c_pops_.Inc();
  return value;
}

template <typename TryPop>
auto Broker::BlockingPop(const std::vector<std::string>& keys,
                         std::chrono::milliseconds timeout,
                         const std::atomic<bool>* cancel, TryPop&& try_pop)
    -> decltype(try_pop()) {
  if (auto hit = try_pop()) return hit;
  if (shutdown_.load(std::memory_order_acquire)) return {};
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return {};
  stats_.blocked_pops.fetch_add(1, std::memory_order_relaxed);
  c_blocked_pops_.Inc();

  // Register one waiter entry per shard that covers a watched key; pushes
  // to those keys signal it. Ordering guarantee against lost wakeups: we
  // register first, then re-run try_pop in the loop — a push before
  // registration is found by that pop, a push after sets `signaled`.
  Waiter waiter;
  std::array<std::vector<const std::string*>, kShards> by_shard;
  for (const std::string& key : keys) {
    by_shard[ShardIndex(key)].push_back(&key);
  }
  std::array<bool, kShards> registered{};
  for (size_t s = 0; s < kShards; ++s) {
    if (by_shard[s].empty()) continue;
    std::scoped_lock lock(shards_[s].mu);
    shards_[s].waiters.emplace_back(&waiter, std::move(by_shard[s]));
    registered[s] = true;
  }

  // The deadline is absolute, computed once: losing a pop race to another
  // consumer must never re-arm the full timeout, so a 20 ms pop stays a
  // 20 ms pop no matter how contended the queue is.
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  decltype(try_pop()) result{};
  while (true) {
    if ((result = try_pop())) break;
    if (shutdown_.load(std::memory_order_acquire)) break;
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) break;
    std::unique_lock wait_lock(waiter.mu);
    if (!waiter.signaled) {
      if (timeout.count() == 0) {
        waiter.cv.wait(wait_lock, [&] { return waiter.signaled; });
      } else if (!waiter.cv.wait_until(wait_lock, deadline,
                                       [&] { return waiter.signaled; })) {
        break;  // timed out
      }
    }
    waiter.signaled = false;
    // Loop: re-try the pop (a rival may have won the race) against the
    // same deadline.
  }

  for (size_t s = 0; s < kShards; ++s) {
    if (!registered[s]) continue;
    std::scoped_lock lock(shards_[s].mu);
    std::erase_if(shards_[s].waiters,
                  [&](const auto& entry) { return entry.first == &waiter; });
  }
  if (!result) {
    // A push may have handed its (single) wake to us in the instant we
    // timed out; if its item is still unclaimed, take it rather than
    // strand it until the next push.
    result = try_pop();
  }
  return result;
}

std::optional<std::pair<std::string, std::string>> Broker::BLPop(
    const std::vector<std::string>& keys, std::chrono::milliseconds timeout,
    const std::atomic<bool>* cancel) {
  auto try_pop = [&]() -> std::optional<std::pair<std::string, std::string>> {
    for (const std::string& key : keys) {
      Shard& shard = ShardFor(key);
      std::scoped_lock lock(shard.mu);
      auto it = shard.lists.find(key);
      if (it == shard.lists.end() || it->second.empty()) continue;
      std::string value = std::move(it->second.front());
      it->second.pop_front();
      stats_.pops.fetch_add(1, std::memory_order_relaxed);
      c_pops_.Inc();
      return std::make_pair(key, std::move(value));
    }
    return std::nullopt;
  };
  return BlockingPop(keys, timeout, cancel, try_pop);
}

std::optional<std::pair<std::string, std::vector<std::string>>>
Broker::BLPopUpTo(const std::vector<std::string>& keys, size_t max_items,
                  std::chrono::milliseconds timeout,
                  const std::atomic<bool>* cancel) {
  if (max_items == 0) max_items = 1;
  auto try_pop =
      [&]() -> std::optional<std::pair<std::string, std::vector<std::string>>> {
    for (const std::string& key : keys) {
      Shard& shard = ShardFor(key);
      std::scoped_lock lock(shard.mu);
      auto it = shard.lists.find(key);
      if (it == shard.lists.end() || it->second.empty()) continue;
      std::deque<std::string>& list = it->second;
      const size_t n = std::min(max_items, list.size());
      std::vector<std::string> items;
      items.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        items.push_back(std::move(list.front()));
        list.pop_front();
      }
      stats_.pops.fetch_add(n, std::memory_order_relaxed);
      stats_.batch_pops.fetch_add(1, std::memory_order_relaxed);
      c_pops_.Inc(n);
      c_batch_pop_ops_.Inc();
      c_batch_pop_items_.Inc(n);
      return std::make_pair(key, std::move(items));
    }
    return std::nullopt;
  };
  return BlockingPop(keys, timeout, cancel, try_pop);
}

size_t Broker::LLen(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.lists.find(key);
  return it == shard.lists.end() ? 0 : it->second.size();
}

size_t Broker::TotalQueued(const std::string& prefix) const {
  size_t total = 0;
  uint64_t scanned = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (auto it = shard.lists.lower_bound(prefix); it != shard.lists.end();
         ++it) {
      ++scanned;
      if (!it->first.starts_with(prefix)) break;
      total += it->second.size();
    }
  }
  stats_.keys_scanned.fetch_add(scanned, std::memory_order_relaxed);
  c_scan_keys_.Inc(scanned);
  return total;
}

uint64_t Broker::Subscribe(const std::string& channel,
                           std::function<void(const std::string&)> callback) {
  std::scoped_lock lock(pubsub_mu_);
  uint64_t id = next_subscription_id_++;
  subscribers_.push_back(Subscriber{id, channel, std::move(callback)});
  return id;
}

void Broker::Unsubscribe(uint64_t subscription_id) {
  std::scoped_lock lock(pubsub_mu_);
  std::erase_if(subscribers_,
                [&](const Subscriber& s) { return s.id == subscription_id; });
}

size_t Broker::Publish(const std::string& channel, const std::string& message) {
  // Copy callbacks out so user code runs without holding the broker lock
  // (it may call back into the broker).
  std::vector<std::function<void(const std::string&)>> targets;
  {
    std::scoped_lock lock(pubsub_mu_);
    for (const Subscriber& s : subscribers_) {
      if (s.channel == channel) targets.push_back(s.callback);
    }
  }
  stats_.publishes.fetch_add(1, std::memory_order_relaxed);
  c_publishes_.Inc();
  for (auto& cb : targets) cb(message);
  return targets.size();
}

void Broker::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (auto& [waiter, watched] : shard.waiters) {
      std::scoped_lock waiter_lock(waiter->mu);
      waiter->signaled = true;
      waiter->cv.notify_one();
    }
  }
}

void Broker::Notify() {
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (auto& [waiter, watched] : shard.waiters) {
      std::scoped_lock waiter_lock(waiter->mu);
      waiter->signaled = true;
      waiter->cv.notify_one();
    }
  }
}

bool Broker::shut_down() const {
  return shutdown_.load(std::memory_order_acquire);
}

void Broker::FlushAll() {
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    shard.strings.clear();
    shard.hashes.clear();
    shard.lists.clear();
  }
}

size_t Broker::DebugWaiterCount() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    count += shard.waiters.size();
  }
  return count;
}

BrokerStats Broker::stats() const {
  BrokerStats s;
  s.gets = stats_.gets.load(std::memory_order_relaxed);
  s.sets = stats_.sets.load(std::memory_order_relaxed);
  s.pushes = stats_.pushes.load(std::memory_order_relaxed);
  s.pops = stats_.pops.load(std::memory_order_relaxed);
  s.blocked_pops = stats_.blocked_pops.load(std::memory_order_relaxed);
  s.publishes = stats_.publishes.load(std::memory_order_relaxed);
  s.batch_pushes = stats_.batch_pushes.load(std::memory_order_relaxed);
  s.batch_pops = stats_.batch_pops.load(std::memory_order_relaxed);
  s.keys_scanned = stats_.keys_scanned.load(std::memory_order_relaxed);
  return s;
}

}  // namespace laminar::broker
