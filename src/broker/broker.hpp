// In-memory message broker modelling the subset of Redis that dispel4py's
// dynamic mapping and Laminar's registry cache use: string keys, hashes,
// lists with blocking pop (BLPOP semantics), counters, and pub/sub.
//
// Substitution rationale (DESIGN.md): the dynamic mapping needs atomic
// shared queues with blocking consumers and a handful of shared counters;
// nothing it measures depends on the TCP hop, so an in-process broker with
// the same API preserves the scheduling behaviour while keeping benches
// deterministic.
//
// Concurrency model: the keyspace is sharded 16 ways by key hash, each
// shard with its own mutex, so operations on keys in different shards never
// contend. Every operation is linearizable per key (Redis itself serializes
// per command; per-key linearizability is what its clients can observe).
// Blocking pops register a per-consumer waiter with each shard covering a
// watched key; a push signals only waiters watching that key, so unrelated
// queues never cause wakeups. Batched ops (RPushMulti, BLPopUpTo) move many
// items under one lock acquisition and one signalling pass — the dynamic
// mapping's tuple micro-batching rides on them.
//
// Per-shard key maps are *sorted* (std::map), so prefix operations
// (DelPrefix, KeyCount, TotalQueued) seek straight to the first matching
// key and stop at the first non-match instead of scanning every key.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace laminar::broker {

/// Counters for the broker-ops micro bench and the autoscaler. Kept as a
/// cheap per-instance snapshot; the same increments are mirrored into the
/// process telemetry registry (laminar_broker_ops_total{op=...},
/// laminar_broker_batch_*, laminar_broker_scan_keys_total).
struct BrokerStats {
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t pushes = 0;  ///< items appended (RPush + RPushMulti items)
  uint64_t pops = 0;    ///< items removed (LPop/BLPop/BLPopUpTo items)
  uint64_t blocked_pops = 0;  ///< pops that had to wait
  uint64_t publishes = 0;
  uint64_t batch_pushes = 0;  ///< RPushMulti calls
  uint64_t batch_pops = 0;    ///< BLPopUpTo calls that returned items
  uint64_t keys_scanned = 0;  ///< keys examined by prefix scans
};

class Broker {
 public:
  Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // ---- strings ----
  void Set(const std::string& key, std::string value);
  std::optional<std::string> Get(const std::string& key) const;
  bool Del(const std::string& key);
  /// Deletes every key (string, hash or list) starting with `prefix`;
  /// returns the number of keys removed. Run-scoped cleanup: a dynamic-
  /// mapping run deletes all its `wf:N:` keys with one call, including
  /// undrained queues after a deadline expiry. Sorted per-shard iteration:
  /// cost is O(shards * log keys + matches), not O(total keys).
  size_t DelPrefix(const std::string& prefix);
  bool Exists(const std::string& key) const;
  /// Number of live keys (any kind) starting with `prefix`;
  /// leak checks assert this returns to its pre-run value.
  size_t KeyCount(const std::string& prefix) const;
  /// Atomic increment; missing keys start at 0.
  int64_t Incr(const std::string& key, int64_t delta = 1);

  // ---- hashes ----
  void HSet(const std::string& key, const std::string& field,
            std::string value);
  std::optional<std::string> HGet(const std::string& key,
                                  const std::string& field) const;
  std::unordered_map<std::string, std::string> HGetAll(
      const std::string& key) const;
  bool HDel(const std::string& key, const std::string& field);

  // ---- lists / queues ----
  /// Appends to the tail; returns new length. The rvalue overload moves the
  /// value into the list (the tuple enqueue path hands its encoded item
  /// straight over, no copy).
  size_t RPush(const std::string& key, std::string&& value);
  size_t RPush(const std::string& key, const std::string& value);
  /// Appends all values (in order) under ONE lock acquisition and one
  /// waiter-signalling pass; returns the new length. Values are moved out
  /// of the vector (it is left empty, capacity retained, so send buffers
  /// can be reused).
  size_t RPushMulti(const std::string& key, std::vector<std::string>&& values);
  /// Pops the head without blocking.
  std::optional<std::string> LPop(const std::string& key);
  /// Blocking head pop across any of `keys` (first non-empty wins, in key
  /// order — BLPOP semantics). Returns (key, value); nullopt on timeout,
  /// shutdown, or when `cancel` (if given) becomes true and Notify() is
  /// called. timeout of zero means wait forever (until Shutdown/cancel).
  std::optional<std::pair<std::string, std::string>> BLPop(
      const std::vector<std::string>& keys,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0),
      const std::atomic<bool>* cancel = nullptr);
  /// Batched BLPop: drains up to `max_items` from the FIRST non-empty key
  /// (key order, as BLPop) in one wake / one lock acquisition, preserving
  /// FIFO order within that key. Returns (key, items); nullopt on timeout,
  /// shutdown, or cancellation. The deadline is absolute, as with BLPop.
  std::optional<std::pair<std::string, std::vector<std::string>>> BLPopUpTo(
      const std::vector<std::string>& keys, size_t max_items,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0),
      const std::atomic<bool>* cancel = nullptr);
  size_t LLen(const std::string& key) const;
  /// Total queued items across keys with the given prefix (autoscaler probe).
  size_t TotalQueued(const std::string& prefix) const;

  // ---- pub/sub ----
  /// Subscribes a callback to a channel; returns a subscription id.
  /// Callbacks run synchronously on the publisher's thread (as with Redis
  /// client libraries dispatching in their I/O loop).
  uint64_t Subscribe(const std::string& channel,
                     std::function<void(const std::string&)> callback);
  void Unsubscribe(uint64_t subscription_id);
  /// Returns the number of subscribers that received the message.
  size_t Publish(const std::string& channel, const std::string& message);

  // ---- lifecycle / introspection ----
  /// Wakes every blocked consumer; subsequent BLPop calls return nullopt
  /// once their queues drain.
  void Shutdown();
  /// Spuriously wakes every blocked pop so it re-checks its cancel flag.
  /// Unlike Shutdown the broker stays fully usable: consumers whose flag is
  /// unset simply resume waiting against their original deadline. A
  /// dynamic-mapping run calls this when it stops, so idle workers return
  /// immediately instead of sleeping out their pop timeout.
  void Notify();
  bool shut_down() const;
  void FlushAll();
  BrokerStats stats() const;
  /// Registered blocking-pop waiters across all shards (tests: a quiesced
  /// broker must report 0 — a leaked entry means a BLPop/BLPopUpTo exited
  /// without deregistering, which would dangle once its stack frame dies).
  size_t DebugWaiterCount() const;

 private:
  /// One blocked BLPop/BLPopUpTo call: its own mutex/condvar, signalled by
  /// pushes to watched keys (and by Shutdown). Stack-allocated by the
  /// blocking call and deregistered before it returns.
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool signaled = false;
  };

  /// One keyspace stripe: sorted key maps plus the waiters whose watched
  /// keys hash here. Cacheline-aligned so shard mutexes never false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::map<std::string, std::string> strings;
    std::map<std::string, std::unordered_map<std::string, std::string>>
        hashes;
    std::map<std::string, std::deque<std::string>> lists;
    /// (waiter, keys-in-this-shard it watches), registration order.
    std::vector<std::pair<Waiter*, std::vector<const std::string*>>> waiters;
  };

  struct Subscriber {
    uint64_t id;
    std::string channel;
    std::function<void(const std::string&)> callback;
  };

  /// All counters relaxed: snapshots need no cross-field consistency.
  struct AtomicStats {
    std::atomic<uint64_t> gets{0};
    std::atomic<uint64_t> sets{0};
    std::atomic<uint64_t> pushes{0};
    std::atomic<uint64_t> pops{0};
    std::atomic<uint64_t> blocked_pops{0};
    std::atomic<uint64_t> publishes{0};
    std::atomic<uint64_t> batch_pushes{0};
    std::atomic<uint64_t> batch_pops{0};
    std::atomic<uint64_t> keys_scanned{0};
  };

  static constexpr size_t kShards = 16;  // power of two; see ShardIndex
  static size_t ShardIndex(const std::string& key);
  Shard& ShardFor(const std::string& key) {
    return shards_[ShardIndex(key)];
  }
  const Shard& ShardFor(const std::string& key) const {
    return shards_[ShardIndex(key)];
  }

  /// Wakes up to `max_waiters` not-yet-signalled waiters watching `key`.
  /// Caller holds shard.mu, which also keeps every registered Waiter*
  /// alive (deregistration needs the same lock).
  static void SignalWatchersLocked(Shard& shard, const std::string& key,
                                   size_t max_waiters);

  /// Shared wait loop of BLPop/BLPopUpTo: fast-path try_pop, then register
  /// a waiter, then pop/wait against one absolute deadline.
  template <typename TryPop>
  auto BlockingPop(const std::vector<std::string>& keys,
                   std::chrono::milliseconds timeout,
                   const std::atomic<bool>* cancel, TryPop&& try_pop)
      -> decltype(try_pop());

  std::array<Shard, kShards> shards_;
  std::atomic<bool> shutdown_{false};

  mutable std::mutex pubsub_mu_;
  std::vector<Subscriber> subscribers_;
  uint64_t next_subscription_id_ = 1;

  mutable AtomicStats stats_;

  /// Process-wide op counters (shared across broker instances); resolved
  /// once at construction so increments are a single relaxed atomic add.
  telemetry::Counter& c_gets_;
  telemetry::Counter& c_sets_;
  telemetry::Counter& c_pushes_;
  telemetry::Counter& c_pops_;
  telemetry::Counter& c_blocked_pops_;
  telemetry::Counter& c_publishes_;
  telemetry::Counter& c_batch_push_ops_;
  telemetry::Counter& c_batch_push_items_;
  telemetry::Counter& c_batch_pop_ops_;
  telemetry::Counter& c_batch_pop_items_;
  telemetry::Counter& c_scan_keys_;
};

}  // namespace laminar::broker
