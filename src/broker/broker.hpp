// In-memory message broker modelling the subset of Redis that dispel4py's
// dynamic mapping and Laminar's registry cache use: string keys, hashes,
// lists with blocking pop (BLPOP semantics), counters, and pub/sub.
//
// Substitution rationale (DESIGN.md): the dynamic mapping needs atomic
// shared queues with blocking consumers and a handful of shared counters;
// nothing it measures depends on the TCP hop, so an in-process broker with
// the same API preserves the scheduling behaviour while keeping benches
// deterministic. All operations are linearizable under one internal mutex
// (Redis itself is single-threaded, so this is also fidelity, not laziness).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace laminar::broker {

/// Counters for the broker-ops micro bench and the autoscaler. Kept as a
/// cheap per-instance snapshot; the same increments are mirrored into the
/// process telemetry registry (laminar_broker_ops_total{op=...}).
struct BrokerStats {
  uint64_t gets = 0;
  uint64_t sets = 0;
  uint64_t pushes = 0;
  uint64_t pops = 0;
  uint64_t blocked_pops = 0;  ///< pops that had to wait
  uint64_t publishes = 0;
};

class Broker {
 public:
  Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  // ---- strings ----
  void Set(const std::string& key, std::string value);
  std::optional<std::string> Get(const std::string& key) const;
  bool Del(const std::string& key);
  /// Deletes every key (string, hash or list) starting with `prefix`;
  /// returns the number of keys removed. Run-scoped cleanup: a dynamic-
  /// mapping run deletes all its `wf:N:` keys with one call, including
  /// undrained queues after a deadline expiry.
  size_t DelPrefix(const std::string& prefix);
  bool Exists(const std::string& key) const;
  /// Number of live keys (any kind) starting with `prefix`;
  /// leak checks assert this returns to its pre-run value.
  size_t KeyCount(const std::string& prefix) const;
  /// Atomic increment; missing keys start at 0.
  int64_t Incr(const std::string& key, int64_t delta = 1);

  // ---- hashes ----
  void HSet(const std::string& key, const std::string& field,
            std::string value);
  std::optional<std::string> HGet(const std::string& key,
                                  const std::string& field) const;
  std::unordered_map<std::string, std::string> HGetAll(
      const std::string& key) const;
  bool HDel(const std::string& key, const std::string& field);

  // ---- lists / queues ----
  /// Appends to the tail; returns new length.
  size_t RPush(const std::string& key, std::string value);
  /// Pops the head without blocking.
  std::optional<std::string> LPop(const std::string& key);
  /// Blocking head pop across any of `keys` (first non-empty wins, in key
  /// order — BLPOP semantics). Returns (key, value); nullopt on timeout or
  /// shutdown. timeout of zero means wait forever (until Shutdown).
  std::optional<std::pair<std::string, std::string>> BLPop(
      const std::vector<std::string>& keys,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0));
  size_t LLen(const std::string& key) const;
  /// Total queued items across keys with the given prefix (autoscaler probe).
  size_t TotalQueued(const std::string& prefix) const;

  // ---- pub/sub ----
  /// Subscribes a callback to a channel; returns a subscription id.
  /// Callbacks run synchronously on the publisher's thread (as with Redis
  /// client libraries dispatching in their I/O loop).
  uint64_t Subscribe(const std::string& channel,
                     std::function<void(const std::string&)> callback);
  void Unsubscribe(uint64_t subscription_id);
  /// Returns the number of subscribers that received the message.
  size_t Publish(const std::string& channel, const std::string& message);

  // ---- lifecycle / introspection ----
  /// Wakes every blocked consumer; subsequent BLPop calls return nullopt
  /// once their queues drain.
  void Shutdown();
  bool shut_down() const;
  void FlushAll();
  BrokerStats stats() const;

 private:
  struct Subscriber {
    uint64_t id;
    std::string channel;
    std::function<void(const std::string&)> callback;
  };

  mutable std::mutex mu_;
  std::condition_variable list_cv_;
  std::unordered_map<std::string, std::string> strings_;
  std::unordered_map<std::string, std::unordered_map<std::string, std::string>>
      hashes_;
  std::unordered_map<std::string, std::deque<std::string>> lists_;
  std::vector<Subscriber> subscribers_;
  uint64_t next_subscription_id_ = 1;
  bool shutdown_ = false;
  mutable BrokerStats stats_;

  /// Process-wide op counters (shared across broker instances); resolved
  /// once at construction so increments are a single relaxed atomic add.
  telemetry::Counter& c_gets_;
  telemetry::Counter& c_sets_;
  telemetry::Counter& c_pushes_;
  telemetry::Counter& c_pops_;
  telemetry::Counter& c_blocked_pops_;
  telemetry::Counter& c_publishes_;
};

}  // namespace laminar::broker
