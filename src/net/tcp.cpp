#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::net {
namespace {

telemetry::Counter& BytesReadCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_net_bytes_read_total");
  return c;
}

telemetry::Counter& BytesWrittenCounter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::Global().GetCounter(
      "laminar_net_bytes_written_total");
  return c;
}

telemetry::Histogram& IoHistogram(const char* op) {
  auto& reg = telemetry::MetricsRegistry::Global();
  static telemetry::Histogram& read = reg.GetHistogram("laminar_net_io_ms",
                                                       "op=\"read\"");
  static telemetry::Histogram& write = reg.GetHistogram("laminar_net_io_ms",
                                                        "op=\"write\"");
  return op[0] == 'r' ? read : write;
}

telemetry::Counter& ConnCounter(const char* state) {
  auto& reg = telemetry::MetricsRegistry::Global();
  static telemetry::Counter& accepted = reg.GetCounter(
      "laminar_net_connections_total", "state=\"accepted\"");
  static telemetry::Counter& rejected = reg.GetCounter(
      "laminar_net_connections_total", "state=\"rejected\"");
  return state[0] == 'a' ? accepted : rejected;
}

telemetry::Gauge& OpenConnGauge() {
  static telemetry::Gauge& g = telemetry::MetricsRegistry::Global().GetGauge(
      "laminar_net_connections", "state=\"open\"");
  return g;
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Ticks an eventfd (wakes any poll on it). Safe from any thread.
void Tick(int event_fd) {
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd, &one, sizeof one);
}

void Drain(int event_fd) {
  uint64_t value;
  while (read(event_fd, &value, sizeof value) > 0) {
  }
}

}  // namespace

// ---- TcpSocketStream -----------------------------------------------------

TcpSocketStream::TcpSocketStream(int fd)
    : fd_(fd), wake_fd_(eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  SetNonBlocking(fd_);
  SetNoDelay(fd_);
}

TcpSocketStream::~TcpSocketStream() {
  MarkReadClosed();
  if (fd_ >= 0) close(fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
}

void TcpSocketStream::MarkReadClosed() {
  if (read_closed_fired_.exchange(true)) return;
  if (on_read_closed_) on_read_closed_();
}

bool TcpSocketStream::WaitFor(short events) {
  pollfd fds[2] = {{fd_, events, 0}, {wake_fd_, POLLIN, 0}};
  int rc = poll(fds, 2, -1);
  if (rc < 0 && errno != EINTR) return false;
  if (fds[1].revents != 0) Drain(wake_fd_);
  // Let the caller retry the syscall: a wake tick means a Close* flag was
  // set and the retry will observe it (or the fd event is also pending).
  return true;
}

bool TcpSocketStream::Write(std::string_view data) {
  Stopwatch watch;
  size_t total = data.size();
  while (!data.empty()) {
    if (write_closed_.load(std::memory_order_acquire)) return false;
    ssize_t n = send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      data.remove_prefix(static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!WaitFor(POLLOUT)) return false;  // kernel buffer full: backpressure
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET / hard error
  }
  BytesWrittenCounter().Inc(total);
  IoHistogram("write").Observe(watch.ElapsedMillis());
  return true;
}

size_t TcpSocketStream::Read(char* buf, size_t max) {
  Stopwatch watch;
  while (true) {
    if (read_closed_.load(std::memory_order_acquire)) {
      MarkReadClosed();
      return 0;
    }
    ssize_t n = recv(fd_, buf, max, 0);
    if (n > 0) {
      BytesReadCounter().Inc(static_cast<uint64_t>(n));
      // Includes the wait for the peer's bytes: on a server connection this
      // is request inter-arrival, on a client it is response turnaround.
      IoHistogram("read").Observe(watch.ElapsedMillis());
      return static_cast<size_t>(n);
    }
    if (n == 0) {  // orderly peer EOF
      MarkReadClosed();
      return 0;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!WaitFor(POLLIN)) {
        MarkReadClosed();
        return 0;
      }
      continue;
    }
    if (errno == EINTR) continue;
    MarkReadClosed();  // ECONNRESET etc. — EOF to the codec
    return 0;
  }
}

void TcpSocketStream::CloseWrite() {
  if (write_closed_.exchange(true)) return;
  shutdown(fd_, SHUT_WR);
  Tick(wake_fd_);
}

void TcpSocketStream::CloseRead() {
  if (read_closed_.exchange(true)) return;
  shutdown(fd_, SHUT_RD);
  Tick(wake_fd_);
  // A locally-initiated close (HttpConnection::Close, e.g. after a protocol
  // error) ends the read side without the reader ever re-entering Read(), so
  // the reap callback must fire here or the listener never collects the
  // connection. The fired-guard keeps it exactly-once, and the callback only
  // pushes onto the reap queue, which is safe from any thread.
  MarkReadClosed();
}

// ---- TcpListener ---------------------------------------------------------

TcpListener::TcpListener(TcpListenerConfig config, StreamHandler handler)
    : config_(std::move(config)), handler_(std::move(handler)) {}

TcpListener::~TcpListener() { Stop(); }

Status TcpListener::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, config_.backlog) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    // Stop() is a no-op before running_ is set — close directly.
    close(listen_fd_);
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Fresh queue per Start(): Stop() closes the previous one permanently
  // (ConcurrentQueue cannot reopen), and a restarted listener with a closed
  // queue would silently drop every reap push.
  reap_queue_ = std::make_unique<ConcurrentQueue<uint64_t>>();
  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
  return Status::Ok();
}

void TcpListener::AcceptLoop() {
  epoll_event events[16];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = epoll_wait(epoll_fd_, events, 16, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == wake_fd_) {
        Drain(wake_fd_);  // stop request; loop condition exits
      } else if (events[i].data.fd == listen_fd_) {
        AcceptPending();
      }
    }
  }
}

void TcpListener::AcceptPending() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      if (errno == EMFILE || errno == ENFILE) {
        // fd exhaustion: the pending connection stays in the accept queue
        // and level-triggered epoll re-fires immediately, so returning
        // straight away would busy-spin the accept loop at 100% CPU until
        // an fd frees up. Pause briefly instead.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
      }
      return;  // transient accept errors (ECONNABORTED): drop
    }
    std::scoped_lock lock(conns_mu_);
    if (conns_.size() >= config_.max_connections) {
      close(fd);  // over the cap: refuse before any protocol state exists
      ConnCounter("rejected").Inc();
      continue;
    }
    uint64_t conn_id = next_conn_id_++;
    auto stream = std::make_unique<TcpSocketStream>(fd);
    stream->set_on_read_closed([this, conn_id] {
      // Runs on the connection's reader thread; the reaper joins that
      // thread, so destruction must not happen here.
      reap_queue_->Push(conn_id);
    });
    conns_[conn_id] = std::make_unique<HttpConnection>(
        std::move(stream), config_.mode, handler_,
        config_.max_handler_threads);
    ConnCounter("accepted").Inc();
    OpenConnGauge().Set(static_cast<int64_t>(conns_.size()));
  }
}

void TcpListener::ReaperLoop() {
  while (auto conn_id = reap_queue_->Pop()) {
    std::unique_ptr<HttpConnection> dead;
    {
      std::scoped_lock lock(conns_mu_);
      auto it = conns_.find(*conn_id);
      if (it == conns_.end()) continue;
      dead = std::move(it->second);
      conns_.erase(it);
      OpenConnGauge().Set(static_cast<int64_t>(conns_.size()));
    }
    dead.reset();  // outside the lock: joins reader + handler threads
  }
}

void TcpListener::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) Tick(wake_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  reap_queue_->Close();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  std::unordered_map<uint64_t, std::unique_ptr<HttpConnection>> conns;
  {
    std::scoped_lock lock(conns_mu_);
    conns.swap(conns_);
  }
  conns.clear();  // closes streams, joins per-connection threads
  OpenConnGauge().Set(0);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

size_t TcpListener::open_connections() const {
  std::scoped_lock lock(conns_mu_);
  return conns_.size();
}

// ---- client side ---------------------------------------------------------

Result<std::unique_ptr<ByteStream>> TcpConnect(const std::string& host,
                                               uint16_t port,
                                               int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve '" + host +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                    ai->ai_protocol);
    if (fd < 0) continue;
    SetNonBlocking(fd);
    int crc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc < 0 && errno == EINPROGRESS) {
      // Non-positive would mean poll(-1) = wait forever; clamp to the
      // default so a black-holed peer can never block the caller forever.
      pollfd pfd{fd, POLLOUT, 0};
      int prc = poll(&pfd, 1, timeout_ms <= 0 ? 10'000 : timeout_ms);
      if (prc <= 0) {
        close(fd);
        last = Status::Unavailable("connect to " + host + ":" + service +
                                   " timed out");
        continue;
      }
      int err = 0;
      socklen_t len = sizeof err;
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      crc = err == 0 ? 0 : -1;
      errno = err;
    }
    if (crc != 0) {
      last = Status::Unavailable("connect to " + host + ":" + service + ": " +
                                 std::strerror(errno));
      close(fd);
      continue;
    }
    freeaddrinfo(res);
    return std::unique_ptr<ByteStream>(std::make_unique<TcpSocketStream>(fd));
  }
  freeaddrinfo(res);
  return last;
}

Result<std::unique_ptr<ByteStream>> TcpConnect(
    const std::string& host, uint16_t port,
    const TcpConnectOptions& options) {
  const int attempts = std::max(1, options.attempts);
  // Deterministic jitter stream; seeded per call so concurrent clients
  // hammering one spawning server spread their retries.
  uint64_t seed = options.jitter_seed;
  if (seed == 0) {
    seed = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(getpid()) ^
           (static_cast<uint64_t>(port) << 32) ^
           static_cast<uint64_t>(NowMicros());
  }
  Rng rng(seed);
  Result<std::unique_ptr<ByteStream>> last =
      Status::Unavailable("no connect attempts");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      int backoff = options.initial_backoff_ms;
      for (int i = 1; i < attempt && backoff < options.max_backoff_ms; ++i) {
        backoff *= 2;
      }
      backoff = std::min(std::max(1, backoff),
                         std::max(1, options.max_backoff_ms));
      const double jitter = 0.5 + rng.NextDouble() * 0.5;  // [0.5, 1.0)
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::max<int64_t>(1, static_cast<int64_t>(backoff * jitter))));
    }
    last = TcpConnect(host, port, options.timeout_ms);
    if (last.ok()) return last;
  }
  return last;
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  std::string host = "127.0.0.1";
  std::string port_str = spec;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  uint32_t port = 0;
  auto [ptr, ec] = std::from_chars(port_str.data(),
                                   port_str.data() + port_str.size(), port);
  if (ec != std::errc() || ptr != port_str.data() + port_str.size() ||
      port == 0 || port > 65535) {
    return Status::InvalidArgument("bad host:port spec '" + spec + "'");
  }
  return std::make_pair(host, static_cast<uint16_t>(port));
}

}  // namespace laminar::net
