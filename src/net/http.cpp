#include "net/http.hpp"

#include "common/byte_buffer.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::net {
namespace {

constexpr uint8_t kFrameHeaders = 1;
constexpr uint8_t kFrameData = 2;
constexpr uint8_t kFrameEnd = 3;
constexpr uint8_t kFrameRst = 4;

/// Optional `content-length` hardening. The frame codec does not need a
/// content length — body size is explicit in the envelope — but clients and
/// intermediaries may attach one, and a header the server silently ignores
/// is exactly the kind that smuggling attacks ride on. When present, every
/// case variant of the header must be a strict digit string (no sign — a
/// leading '+' is how classic CL parser differentials start — no
/// whitespace, no decimal point), must not overflow the frame cap, all
/// duplicates must agree, and the value must equal the actual body size.
Status ValidateContentLength(const Value& headers, size_t body_size) {
  if (!headers.is_object()) return Status::Ok();
  bool seen = false;
  uint64_t declared = 0;
  for (const auto& [name, value] : headers.as_object()) {
    if (strings::ToLower(name) != "content-length") continue;
    std::string text;
    if (value.is_string()) {
      text = value.as_string();
    } else if (value.is_int()) {
      text = std::to_string(value.as_int());  // negatives fail the digit scan
    }
    if (text.empty()) {
      return Status::ParseError("content-length must be a digit string");
    }
    uint64_t n = 0;
    for (char c : text) {
      if (c < '0' || c > '9') {
        return Status::ParseError(
            "content-length must contain only digits");
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
      if (n > HttpConnection::kMaxFramePayload) {
        return Status::ParseError("content-length exceeds frame cap");
      }
    }
    if (seen && n != declared) {
      return Status::ParseError("conflicting duplicate content-length headers");
    }
    seen = true;
    declared = n;
  }
  if (seen && declared != static_cast<uint64_t>(body_size)) {
    return Status::ParseError("content-length does not match body size");
  }
  return Status::Ok();
}

}  // namespace

Value HttpRequest::ToValue() const {
  Value v = Value::MakeObject();
  v["method"] = method;
  v["path"] = path;
  v["headers"] = headers;
  v["body"] = body;
  return v;
}

Result<HttpRequest> HttpRequest::FromValue(const Value& v) {
  if (!v.is_object()) return Status::ParseError("request must be an object");
  HttpRequest req;
  req.method = v.GetString("method", "POST");
  req.path = v.GetString("path");
  req.headers = v.at("headers");
  req.body = v.GetString("body");
  if (req.path.empty()) return Status::ParseError("request missing path");
  if (Status cl = ValidateContentLength(req.headers, req.body.size());
      !cl.ok()) {
    return cl;
  }
  return req;
}

std::optional<std::string> ResponseStream::NextChunk() {
  return chunks_.Pop();
}

std::string ResponseStream::ReadAll() {
  std::string out;
  while (auto chunk = NextChunk()) out += *chunk;
  return out;
}

/// Server-side responder bound to one stream.
class HttpConnection::Responder final : public StreamResponder {
 public:
  Responder(HttpConnection& conn, uint64_t stream_id)
      : conn_(conn), stream_id_(stream_id) {}

  void SendChunk(std::string_view chunk) override {
    if (ended_) return;
    if (conn_.mode_ == Mode::kBatch) {
      // HTTP/1.1 behaviour: nothing leaves the server until the handler
      // completes; stdout is captured into one buffer.
      buffer_.append(chunk.data(), chunk.size());
      return;
    }
    SendChunkFrames(chunk);
  }

  void End(int status) override {
    if (ended_) return;
    ended_ = true;
    if (conn_.mode_ == Mode::kBatch && !buffer_.empty()) {
      SendChunkFrames(buffer_);
    }
    ByteWriter w;
    w.PutU32(static_cast<uint32_t>(status));
    conn_.WriteFrame(kFrameEnd, stream_id_, w.data());
  }

 private:
  void SendChunkFrames(std::string_view chunk) {
    // Respect the frame-size bound, splitting large chunks.
    while (!chunk.empty()) {
      size_t n = std::min(chunk.size(), kMaxFrameSize);
      conn_.WriteFrame(kFrameData, stream_id_, chunk.substr(0, n));
      chunk.remove_prefix(n);
    }
  }

  HttpConnection& conn_;
  uint64_t stream_id_;
  std::string buffer_;
  bool ended_ = false;
};

HttpConnection::HttpConnection(std::unique_ptr<ByteStream> stream, Mode mode,
                               StreamHandler handler,
                               size_t max_handler_threads)
    : stream_(std::move(stream)),
      mode_(mode),
      handler_(std::move(handler)),
      max_handler_threads_(std::max<size_t>(1, max_handler_threads)) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

HttpConnection::~HttpConnection() {
  Close();
  if (reader_.joinable()) reader_.join();
  handler_tasks_.Close();  // workers drain queued requests, then exit
  std::vector<std::thread> workers;
  {
    std::scoped_lock lock(handler_workers_mu_);
    workers.swap(handler_workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
}

size_t HttpConnection::handler_threads() const {
  std::scoped_lock lock(handler_workers_mu_);
  return handler_workers_.size();
}

void HttpConnection::DispatchHandler(std::function<void()> task) {
  size_t pending =
      pending_tasks_.fetch_add(1, std::memory_order_acq_rel) + 1;
  {
    std::scoped_lock lock(handler_workers_mu_);
    // Spawn lazily: only when the idle workers cannot cover the tasks
    // outstanding (pending counts tasks not yet *dequeued*, so a worker
    // that raised its idle flag but is still en route to an earlier task
    // does not mask the need for another thread). A momentary mis-count in
    // the other direction at worst spawns one extra worker, still within
    // the cap.
    if (idle_workers_.load(std::memory_order_acquire) < pending &&
        handler_workers_.size() < max_handler_threads_) {
      handler_workers_.emplace_back([this] { HandlerWorkerLoop(); });
    }
  }
  handler_tasks_.Push(std::move(task));
}

void HttpConnection::HandlerWorkerLoop() {
  while (true) {
    idle_workers_.fetch_add(1, std::memory_order_acq_rel);
    std::optional<std::function<void()>> task = handler_tasks_.Pop();
    idle_workers_.fetch_sub(1, std::memory_order_acq_rel);
    if (!task) return;  // queue closed and drained
    pending_tasks_.fetch_sub(1, std::memory_order_acq_rel);
    (*task)();
  }
}

void HttpConnection::ProtocolError(const char* reason) {
  telemetry::MetricsRegistry::Global()
      .GetCounter("laminar_net_protocol_errors_total")
      .Inc();
  (void)reason;  // counted, not logged: hostile peers can spam this path
  Close();
}

void HttpConnection::Close() {
  if (closed_.exchange(true)) return;
  stream_->CloseWrite();
  stream_->CloseRead();  // unblock our reader thread
  // Unblock local pending readers.
  std::scoped_lock lock(streams_mu_);
  for (auto& [id, rs] : pending_) rs->chunks_.Close();
  pending_.clear();
}

void HttpConnection::WriteFrame(uint8_t type, uint64_t stream_id,
                                std::string_view payload) {
  // Write coalescing: header + payload are assembled into one buffer and
  // handed to the stream as a single Write, so the TCP transport issues one
  // send(2) per frame (≤ kMaxFrameSize payload) instead of dribbling.
  static telemetry::Counter& frames =
      telemetry::MetricsRegistry::Global().GetCounter(
          "laminar_net_frames_written_total");
  static telemetry::Counter& frame_bytes =
      telemetry::MetricsRegistry::Global().GetCounter(
          "laminar_net_frame_bytes_total");
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU8(type);
  w.PutU64(stream_id);
  w.PutRaw(payload);
  std::scoped_lock lock(write_mu_);
  stream_->Write(w.data());
  frames.Inc();
  frame_bytes.Inc(w.data().size());
}

std::shared_ptr<ResponseStream> HttpConnection::Send(
    const HttpRequest& request) {
  auto response = std::make_shared<ResponseStream>();
  uint64_t id = next_stream_id_.fetch_add(2);  // odd ids: locally initiated
  {
    // The closed_ check must happen under streams_mu_: Close() flips
    // closed_ *before* taking the lock to clear pending_, so either we see
    // it here and fail fast, or our entry is inserted in time for Close()
    // to fail it — never a stranded entry that blocks forever.
    std::scoped_lock lock(streams_mu_);
    if (closed_.load()) {
      response->status_.store(503);
      response->chunks_.Close();
      return response;
    }
    pending_[id] = response;
  }
  if (mode_ == Mode::kBatch) {
    // No pipelining: hold the batch lock until the response completes.
    std::scoped_lock batch(batch_mu_);
    WriteFrame(kFrameHeaders, id, request.ToValue().ToJson());
    // Wait for END by buffering chunks locally; the reader thread closes
    // the queue when the response ends.
    std::string all;
    while (auto chunk = response->chunks_.Pop()) all += *chunk;
    auto buffered = std::make_shared<ResponseStream>();
    buffered->status_.store(response->status());
    if (!all.empty()) buffered->chunks_.Push(std::move(all));
    buffered->chunks_.Close();
    return buffered;
  }
  WriteFrame(kFrameHeaders, id, request.ToValue().ToJson());
  return response;
}

Result<std::pair<int, std::string>> HttpConnection::Call(
    const HttpRequest& request) {
  std::shared_ptr<ResponseStream> rs = Send(request);
  std::string body = rs->ReadAll();
  int status = rs->status();
  if (status == 0) {
    return Status::Unavailable("connection closed before response completed");
  }
  return std::make_pair(status, std::move(body));
}

void HttpConnection::ReaderLoop() {
  while (true) {
    char header[4 + 1 + 8];
    if (!stream_->ReadExact(header, sizeof header)) break;  // EOF
    ByteReader r(std::string_view(header, sizeof header));
    uint32_t len = r.GetU32().value();
    uint8_t type = r.GetU8().value();
    uint64_t stream_id = r.GetU64().value();
    // Hostile-byte hardening: validate the header before allocating or
    // dispatching anything. A declared length over the cap or a frame type
    // outside the codec closes the connection cleanly (no 4 GiB allocation,
    // no guessing at unknown semantics).
    if (len > kMaxFramePayload) {
      ProtocolError("frame payload_len over cap");
      break;
    }
    if (type < kFrameHeaders || type > kFrameRst) {
      ProtocolError("unknown frame type");
      break;
    }
    std::string payload(len, '\0');
    if (len > 0 && !stream_->ReadExact(payload.data(), len)) break;

    bool fatal = false;
    switch (type) {
      case kFrameHeaders: {
        Result<Value> parsed = json::Parse(payload);
        if (!parsed.ok()) {
          WriteFrame(kFrameRst, stream_id, parsed.status().message());
          break;
        }
        Result<HttpRequest> req = HttpRequest::FromValue(parsed.value());
        if (!req.ok() || !handler_) {
          if (!req.ok()) {
            // A syntactically valid envelope with malformed semantics
            // (bad/conflicting content-length, missing path) is counted
            // with the other protocol errors but is NOT fatal: the stream
            // gets a clean 400 and the connection — which may be
            // multiplexing well-formed streams — stays open.
            telemetry::MetricsRegistry::Global()
                .GetCounter("laminar_net_protocol_errors_total")
                .Inc();
          }
          ByteWriter w;
          w.PutU32(handler_ ? 400u : 501u);
          WriteFrame(kFrameEnd, stream_id, w.data());
          break;
        }
        // Dispatch to the bounded worker pool so slow handlers do not stall
        // the reader (kStreaming multiplexes; kBatch clients only send one
        // anyway). Workers are reused across requests, so a long-lived
        // connection serving many requests keeps a constant thread count.
        auto responder = std::make_shared<Responder>(*this, stream_id);
        HttpRequest request = std::move(req.value());
        DispatchHandler([this, responder, request = std::move(request)] {
          handler_(request, *responder);
        });
        break;
      }
      case kFrameData: {
        std::shared_ptr<ResponseStream> rs;
        {
          std::scoped_lock lock(streams_mu_);
          auto it = pending_.find(stream_id);
          if (it != pending_.end()) rs = it->second;
        }
        if (rs) {
          rs->chunks_.Push(std::move(payload));
        } else if (!closed_.load()) {
          // DATA for a stream this endpoint never initiated (or already
          // completed) is a protocol violation — except while closing,
          // when pending_ was cleared under the peer's feet.
          ProtocolError("DATA for unknown stream id");
          fatal = true;
        }
        break;
      }
      case kFrameEnd: {
        ByteReader er(payload);
        int status = static_cast<int>(er.GetU32().value_or(500));
        std::shared_ptr<ResponseStream> rs;
        {
          std::scoped_lock lock(streams_mu_);
          auto it = pending_.find(stream_id);
          if (it != pending_.end()) {
            rs = it->second;
            pending_.erase(it);
          }
        }
        if (rs) {
          rs->status_.store(status);
          rs->chunks_.Close();
        }
        break;
      }
      case kFrameRst: {
        std::shared_ptr<ResponseStream> rs;
        {
          std::scoped_lock lock(streams_mu_);
          auto it = pending_.find(stream_id);
          if (it != pending_.end()) {
            rs = it->second;
            pending_.erase(it);
          }
        }
        if (rs) {
          rs->status_.store(500);
          rs->chunks_.Close();
        }
        break;
      }
      default:
        break;  // unreachable: header validation rejected unknown types
    }
    if (fatal) break;
  }
  // EOF: fail all pending responses, then close the whole connection so a
  // racing Send() fails fast instead of parking a request that no peer
  // will ever answer.
  {
    std::scoped_lock lock(streams_mu_);
    for (auto& [id, rs] : pending_) {
      rs->status_.store(503);
      rs->chunks_.Close();
    }
    pending_.clear();
  }
  Close();
}

}  // namespace laminar::net
