// Real-socket transport for the Laminar wire protocol (ROADMAP item 2).
//
// The frame codec, HttpConnection and LaminarServer::Handle() are all written
// against the ByteStream abstraction; this header supplies the second
// implementation of that abstraction — connected TCP sockets — so the same
// protocol runs unchanged across OS processes and machines:
//
//  * TcpSocketStream — a ByteStream over one connected socket. The fd is
//    non-blocking; Read/Write loop over EAGAIN with poll(2) waits so partial
//    reads and short writes are invisible to the codec, CloseWrite/CloseRead
//    map onto shutdown(2) half-close, and a wake eventfd lets another thread
//    cancel a blocked Read (the HttpConnection::Close path).
//  * TcpListener — an epoll accept loop: the listening socket (and a wake
//    eventfd) live in an epoll set, accepted sockets get TCP_NODELAY and one
//    HttpConnection each (bounded by `max_connections`; the kernel accept
//    backlog is bounded by `backlog`), and a reaper thread destroys
//    connections whose peer hung up without ever stalling the accept loop.
//  * TcpConnect — the client side: resolve, connect, wrap.
//
// The in-memory pipe transport (bytestream.hpp) remains the default for
// deterministic tests; both transports are asserted protocol-identical by
// tests/transport_test.cpp.
//
// Telemetry (process-wide, in MetricsRegistry::Global()):
//   laminar_net_connections{state="open"}                (gauge)
//   laminar_net_connections_total{state="accepted"|"rejected"}  (counters)
//   laminar_net_bytes_read_total / laminar_net_bytes_written_total
//   laminar_net_io_ms{op="read"|"write"} — per-connection blocking-call
//     latency (read includes time waiting for the peer's next frame).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.hpp"
#include "net/http.hpp"

namespace laminar::net {

/// ByteStream over a connected TCP socket. Takes ownership of `fd`, switches
/// it to non-blocking and sets TCP_NODELAY (frames are written whole, so
/// Nagle coalescing only adds latency). Thread-compatible with the codec's
/// usage: one reader thread plus writers serialized by HttpConnection.
class TcpSocketStream final : public ByteStream {
 public:
  explicit TcpSocketStream(int fd);
  ~TcpSocketStream() override;

  /// Writes all bytes, looping over short writes and EAGAIN (poll POLLOUT);
  /// false once the peer has reset/closed or after CloseWrite.
  bool Write(std::string_view data) override;
  /// Blocking read of up to `max` bytes (poll POLLIN on EAGAIN); 0 on EOF,
  /// peer reset, or after CloseRead.
  size_t Read(char* buf, size_t max) override;
  /// Half-close via shutdown(SHUT_WR): the peer drains then sees EOF.
  void CloseWrite() override;
  /// Cancels reads via shutdown(SHUT_RD) + eventfd wakeup. Unlike the
  /// in-memory pipe, bytes still in the kernel buffer are discarded.
  void CloseRead() override;

  /// Invoked exactly once when the read side ends — from the reading thread
  /// on peer EOF/reset, or from whichever thread calls CloseRead() on a
  /// locally-initiated close (e.g. a protocol error). TcpListener uses this
  /// to reap the connection; the callback must be safe to run from any
  /// thread. Set before the first Read.
  void set_on_read_closed(std::function<void()> cb) {
    on_read_closed_ = std::move(cb);
  }

  int fd() const { return fd_; }

 private:
  void MarkReadClosed();
  /// poll(2) for `events` on fd_ or a wake tick; false when woken/cancelled.
  bool WaitFor(short events);

  int fd_;
  int wake_fd_;  ///< eventfd: CloseRead/CloseWrite tick it to break poll()
  std::atomic<bool> read_closed_{false};
  std::atomic<bool> write_closed_{false};
  std::atomic<bool> read_closed_fired_{false};
  std::function<void()> on_read_closed_;
};

struct TcpListenerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral; see TcpListener::port() after Start
  int backlog = 64;   ///< kernel accept-queue bound (listen(2))
  /// Open-connection cap: accepts beyond it are closed immediately and
  /// counted as laminar_net_connections_total{state="rejected"}.
  size_t max_connections = 256;
  HttpConnection::Mode mode = HttpConnection::Mode::kStreaming;
  /// Per-connection handler-dispatch thread cap (HttpConnection).
  size_t max_handler_threads = HttpConnection::kDefaultMaxHandlerThreads;
};

/// Epoll-based accept loop owning one HttpConnection per accepted socket.
class TcpListener {
 public:
  TcpListener(TcpListenerConfig config, StreamHandler handler);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds, listens and starts the accept + reaper threads.
  Status Start();
  /// Stops accepting, closes every connection, joins threads. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start()).
  uint16_t port() const { return port_; }
  size_t open_connections() const;

 private:
  void AcceptLoop();
  void ReaperLoop();
  void AcceptPending();

  TcpListenerConfig config_;
  StreamHandler handler_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::thread reaper_thread_;

  mutable std::mutex conns_mu_;
  /// Keyed by a monotonic connection id (fds are reused by the kernel).
  std::unordered_map<uint64_t, std::unique_ptr<HttpConnection>> conns_;
  uint64_t next_conn_id_ = 1;
  /// Recreated by each Start(): Stop() closes it to end the reaper, and a
  /// closed ConcurrentQueue cannot be reopened.
  std::unique_ptr<ConcurrentQueue<uint64_t>> reap_queue_;
};

/// Connects to host:port (numeric or resolvable name) and returns the
/// stream. Blocking connect bounded by `timeout_ms`; non-positive values
/// are clamped to the 10 s default (a connect never waits indefinitely).
Result<std::unique_ptr<ByteStream>> TcpConnect(const std::string& host,
                                               uint16_t port,
                                               int timeout_ms = 10'000);

/// Retry policy for TcpConnect: a freshly spawned `laminar_serve` (or a
/// follower restarting mid-test) refuses connections for a few milliseconds
/// between fork and listen(2), so callers racing a server's startup retry
/// ECONNREFUSED with capped exponential backoff plus full jitter instead of
/// sleeping a guessed amount. `attempts` counts total tries (1 = the plain
/// single-shot TcpConnect).
struct TcpConnectOptions {
  int timeout_ms = 10'000;        ///< per-attempt connect timeout
  int attempts = 1;               ///< total connect attempts (min 1)
  int initial_backoff_ms = 10;    ///< sleep before the 2nd attempt
  int max_backoff_ms = 500;       ///< backoff growth cap (doubling)
  uint64_t jitter_seed = 0;       ///< 0 = derive from this process/attempt
};

/// TcpConnect with retries. Each failed attempt sleeps
/// `min(initial_backoff_ms << n, max_backoff_ms)` scaled by a uniform
/// [0.5, 1.0) jitter factor, then reconnects; returns the last error once
/// the attempt budget is spent.
Result<std::unique_ptr<ByteStream>> TcpConnect(const std::string& host,
                                               uint16_t port,
                                               const TcpConnectOptions& options);

/// Splits "host:port" (also accepts ":port" and plain "port" as localhost).
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

}  // namespace laminar::net
