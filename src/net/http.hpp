// The Laminar wire protocol, in two flavours over the same frame codec:
//
//  * Http1Connection — models Laminar 1.0's HTTP/1.1 usage: one request at a
//    time, the response fully buffered server-side and delivered whole
//    ("the engine ran the entire workflow, captured stdout, and sent the
//    complete response back", paper §IV-E).
//  * Http2Connection — models Laminar 2.0's HTTP/2 streaming: multiplexed
//    streams, DATA frames forwarded to the client as they are produced,
//    bounded frame size.
//
// Frame layout (little-endian): u32 payload_len | u8 type | u64 stream_id |
// payload. Types: HEADERS (JSON request), DATA (chunk), END (u32 status),
// RST.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/concurrent_queue.hpp"
#include "common/status.hpp"
#include "common/value.hpp"
#include "net/bytestream.hpp"

namespace laminar::net {

struct HttpRequest {
  std::string method = "POST";
  std::string path;
  Value headers = Value::MakeObject();
  std::string body;

  Value ToValue() const;
  static Result<HttpRequest> FromValue(const Value& v);
};

/// Server-side handle for writing a (possibly streaming) response.
class StreamResponder {
 public:
  virtual ~StreamResponder() = default;
  virtual void SendChunk(std::string_view chunk) = 0;
  /// Completes the response. Exactly once per request.
  virtual void End(int status) = 0;
};

/// Server request handler; may block, may stream chunks as they appear.
using StreamHandler =
    std::function<void(const HttpRequest&, StreamResponder&)>;

/// Client-side streaming response. NextChunk blocks until a chunk, returns
/// nullopt at end-of-response; status() is valid after that.
class ResponseStream {
 public:
  std::optional<std::string> NextChunk();
  /// Convenience: concatenates remaining chunks.
  std::string ReadAll();
  int status() const { return status_.load(); }

 private:
  friend class HttpConnection;
  ConcurrentQueue<std::string> chunks_;
  std::atomic<int> status_{0};
};

/// One protocol endpoint. A connection is created over a ByteStream end and
/// can serve (with a handler) and/or send requests — Laminar's engine does
/// both (it serves /execute and calls back for missing resources).
class HttpConnection {
 public:
  enum class Mode {
    kBatch,      ///< HTTP/1.1-like: responses buffered, one request in flight
    kStreaming,  ///< HTTP/2-like: multiplexed, chunks forwarded immediately
  };

  /// `max_handler_threads` bounds the per-connection handler-dispatch pool:
  /// workers are created on demand up to the cap and reused across requests,
  /// so a long-lived connection serving many requests keeps a constant
  /// thread count (requests beyond the cap queue FIFO).
  HttpConnection(std::unique_ptr<ByteStream> stream, Mode mode,
                 StreamHandler handler = nullptr,
                 size_t max_handler_threads = kDefaultMaxHandlerThreads);
  ~HttpConnection();

  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Sends a request. In kBatch mode, blocks any further Send until the
  /// response ends (protocol has no pipelining). Returns the response
  /// stream (already-whole in batch mode).
  std::shared_ptr<ResponseStream> Send(const HttpRequest& request);

  /// Blocking convenience: sends and reads the full response body.
  Result<std::pair<int, std::string>> Call(const HttpRequest& request);

  /// Closes the write side; the peer sees EOF after draining.
  void Close();

  Mode mode() const { return mode_; }

  /// Maximum DATA frame payload (chunks are split to this size).
  static constexpr size_t kMaxFrameSize = 16 * 1024;

  /// Hard cap on any incoming frame's declared payload_len. HEADERS frames
  /// carry whole JSON request bodies (code, multipart resource uploads), so
  /// this is far above kMaxFrameSize — but a hostile 4 GiB length must be
  /// rejected before the codec allocates for it.
  static constexpr size_t kMaxFramePayload = 64 * 1024 * 1024;

  /// Default per-connection handler-dispatch thread cap.
  static constexpr size_t kDefaultMaxHandlerThreads = 8;

  /// Live handler-pool threads (bounded by max_handler_threads).
  size_t handler_threads() const;

  /// True once the connection shut down (peer EOF, Close(), or a protocol
  /// violation — oversized/unknown frames close the connection cleanly).
  bool is_closed() const { return closed_.load(); }

 private:
  class Responder;
  void ReaderLoop();
  void WriteFrame(uint8_t type, uint64_t stream_id, std::string_view payload);
  /// Hands one parsed request to the handler pool (spawning a worker when
  /// none is idle and the cap allows).
  void DispatchHandler(std::function<void()> task);
  void HandlerWorkerLoop();
  /// Counts the violation and closes the connection; the reader loop exits.
  void ProtocolError(const char* reason);

  std::unique_ptr<ByteStream> stream_;
  Mode mode_;
  StreamHandler handler_;
  std::mutex write_mu_;
  std::mutex streams_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<ResponseStream>> pending_;
  std::atomic<uint64_t> next_stream_id_{1};
  std::mutex batch_mu_;  ///< serializes batch-mode requests
  size_t max_handler_threads_;
  ConcurrentQueue<std::function<void()>> handler_tasks_;
  std::vector<std::thread> handler_workers_;
  mutable std::mutex handler_workers_mu_;
  std::atomic<size_t> idle_workers_{0};
  /// Tasks pushed but not yet dequeued by a worker. Decremented only at
  /// dequeue, so a dispatcher comparing it against idle_workers_ cannot be
  /// fooled by a worker that raised its idle flag while en route to an
  /// earlier task.
  std::atomic<size_t> pending_tasks_{0};
  std::thread reader_;
  std::atomic<bool> closed_{false};
};

}  // namespace laminar::net
