#include "net/bytestream.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace laminar::net {
namespace {

std::atomic<uint64_t> g_bytes_written{0};

/// One direction of a pipe: a byte FIFO with close semantics.
struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::string buffer;
  bool closed = false;

  bool Write(std::string_view data) {
    {
      std::scoped_lock lock(mu);
      if (closed) return false;
      buffer.append(data.data(), data.size());
    }
    g_bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
    cv.notify_all();
    return true;
  }

  size_t Read(char* out, size_t max) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return closed || !buffer.empty(); });
    if (buffer.empty()) return 0;  // closed and drained -> EOF
    size_t n = std::min(max, buffer.size());
    std::memcpy(out, buffer.data(), n);
    buffer.erase(0, n);
    return n;
  }

  void Close() {
    {
      std::scoped_lock lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class PipeEnd final : public ByteStream {
 public:
  PipeEnd(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~PipeEnd() override {
    out_->Close();
    in_->Close();
  }

  bool Write(std::string_view data) override { return out_->Write(data); }
  size_t Read(char* buf, size_t max) override { return in_->Read(buf, max); }
  void CloseWrite() override { out_->Close(); }
  void CloseRead() override { in_->Close(); }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

}  // namespace

bool ByteStream::ReadExact(char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    size_t r = Read(buf + got, n - got);
    if (r == 0) return false;
    got += r;
  }
  return true;
}

DuplexPipe CreatePipe() {
  auto ab = std::make_shared<Channel>();
  auto ba = std::make_shared<Channel>();
  DuplexPipe pipe;
  pipe.first = std::make_unique<PipeEnd>(ab, ba);
  pipe.second = std::make_unique<PipeEnd>(ba, ab);
  return pipe;
}

uint64_t PipeCounters::BytesWritten() {
  return g_bytes_written.load(std::memory_order_relaxed);
}

void PipeCounters::Reset() {
  g_bytes_written.store(0, std::memory_order_relaxed);
}

}  // namespace laminar::net
