#include "net/bytestream.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>

namespace laminar::net {
namespace {

std::atomic<uint64_t> g_bytes_written{0};

/// One direction of a pipe: a byte FIFO with close semantics. A non-zero
/// capacity bounds the buffer: writers block until the reader drains,
/// mirroring kernel socket-buffer backpressure.
struct Channel {
  explicit Channel(size_t capacity) : capacity(capacity) {}

  std::mutex mu;
  std::condition_variable cv;        ///< readers wait here
  std::condition_variable not_full;  ///< bounded-mode writers wait here
  std::string buffer;
  const size_t capacity;  ///< 0 = unbounded
  bool closed = false;

  bool Write(std::string_view data) {
    size_t total = data.size();
    std::unique_lock lock(mu);
    while (!data.empty()) {
      not_full.wait(lock, [&] {
        return closed || capacity == 0 || buffer.size() < capacity;
      });
      if (closed) return false;
      size_t n = capacity == 0
                     ? data.size()
                     : std::min(data.size(), capacity - buffer.size());
      buffer.append(data.data(), n);
      data.remove_prefix(n);
      cv.notify_all();
    }
    g_bytes_written.fetch_add(total, std::memory_order_relaxed);
    return true;
  }

  size_t Read(char* out, size_t max) {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return closed || !buffer.empty(); });
    if (buffer.empty()) return 0;  // closed and drained -> EOF
    size_t n = std::min(max, buffer.size());
    std::memcpy(out, buffer.data(), n);
    buffer.erase(0, n);
    not_full.notify_all();
    return n;
  }

  void Close() {
    {
      std::scoped_lock lock(mu);
      closed = true;
    }
    cv.notify_all();
    not_full.notify_all();
  }
};

class PipeEnd final : public ByteStream {
 public:
  PipeEnd(std::shared_ptr<Channel> out, std::shared_ptr<Channel> in)
      : out_(std::move(out)), in_(std::move(in)) {}
  ~PipeEnd() override {
    out_->Close();
    in_->Close();
  }

  bool Write(std::string_view data) override { return out_->Write(data); }
  size_t Read(char* buf, size_t max) override { return in_->Read(buf, max); }
  void CloseWrite() override { out_->Close(); }
  void CloseRead() override { in_->Close(); }

 private:
  std::shared_ptr<Channel> out_;
  std::shared_ptr<Channel> in_;
};

}  // namespace

bool ByteStream::ReadExact(char* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    size_t r = Read(buf + got, n - got);
    if (r == 0) return false;
    got += r;
  }
  return true;
}

DuplexPipe CreatePipe(size_t capacity) {
  auto ab = std::make_shared<Channel>(capacity);
  auto ba = std::make_shared<Channel>(capacity);
  DuplexPipe pipe;
  pipe.first = std::make_unique<PipeEnd>(ab, ba);
  pipe.second = std::make_unique<PipeEnd>(ba, ab);
  return pipe;
}

uint64_t PipeCounters::BytesWritten() {
  return g_bytes_written.load(std::memory_order_relaxed);
}

void PipeCounters::Reset() {
  g_bytes_written.store(0, std::memory_order_relaxed);
}

}  // namespace laminar::net
