// Multipart bodies for resource upload (paper §IV-F): "new endpoints on the
// execution engine and server accept HTTP multipart requests for these
// files". Encodes a set of named files into one body with a boundary, and
// decodes it back; binary-safe because parts are length-prefixed in their
// part headers (a simplification over MIME that keeps parsing exact).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"

namespace laminar::net {

struct FilePart {
  std::string name;     ///< logical resource path, e.g. "data/input.csv"
  std::string content;  ///< raw bytes
};

/// Encodes parts into a multipart body.
std::string EncodeMultipart(const std::vector<FilePart>& parts);

/// Decodes a multipart body produced by EncodeMultipart.
Result<std::vector<FilePart>> DecodeMultipart(std::string_view body);

}  // namespace laminar::net
