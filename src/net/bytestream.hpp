// Byte-stream transport for the client/server protocol.
//
// Substitution (DESIGN.md): Laminar's HTTP runs over TCP; we run the same
// protocol over in-memory duplex pipes — thread-safe byte FIFOs with EOF —
// which keeps the batch-vs-streaming benches deterministic while preserving
// every protocol-visible behaviour (framing, interleaving, blocking reads,
// half-close).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace laminar::net {

/// One endpoint of a bidirectional byte stream.
class ByteStream {
 public:
  virtual ~ByteStream() = default;
  /// Writes all bytes; returns false if the peer closed its read side.
  virtual bool Write(std::string_view data) = 0;
  /// Blocking read of up to `max` bytes; returns bytes read, 0 on EOF.
  virtual size_t Read(char* buf, size_t max) = 0;
  /// Half-close: peer reads drain then hit EOF. Idempotent.
  virtual void CloseWrite() = 0;
  /// Cancels this endpoint's reads: blocked and future Reads drain buffered
  /// bytes then return EOF. Idempotent. Needed for orderly shutdown when the
  /// peer is still open.
  virtual void CloseRead() = 0;

  /// Reads exactly n bytes; false on premature EOF.
  bool ReadExact(char* buf, size_t n);
};

/// A connected pair of in-memory endpoints.
struct DuplexPipe {
  std::unique_ptr<ByteStream> first;
  std::unique_ptr<ByteStream> second;
};

/// Creates a connected pair. Writes on one endpoint become reads on the
/// other. `capacity` bounds the per-direction buffer in bytes: a slow
/// reader blocks the writer once the buffer fills, matching real-socket
/// backpressure (kernel send/receive buffers). The default 0 keeps the
/// historical unbounded behaviour for benches that measure protocol
/// behaviour, not backpressure.
DuplexPipe CreatePipe(size_t capacity = 0);

/// Bytes moved through pipes since process start (resource-transfer bench).
struct PipeCounters {
  static uint64_t BytesWritten();
  static void Reset();
};

}  // namespace laminar::net
