#include "net/multipart.hpp"

#include "common/byte_buffer.hpp"

namespace laminar::net {

namespace {
constexpr char kMagic[] = "LMPT1";  // laminar multipart v1
}

std::string EncodeMultipart(const std::vector<FilePart>& parts) {
  ByteWriter w;
  w.PutRaw(kMagic);
  w.PutU32(static_cast<uint32_t>(parts.size()));
  for (const FilePart& p : parts) {
    w.PutString(p.name);
    w.PutString(p.content);
  }
  return std::move(w).Take();
}

Result<std::vector<FilePart>> DecodeMultipart(std::string_view body) {
  if (body.size() < 5 || body.substr(0, 5) != kMagic) {
    return Status::ParseError("not a multipart body");
  }
  ByteReader r(body.substr(5));
  Result<uint32_t> count = r.GetU32();
  if (!count.ok()) return count.status();
  std::vector<FilePart> parts;
  parts.reserve(count.value());
  for (uint32_t i = 0; i < count.value(); ++i) {
    Result<std::string> name = r.GetString();
    if (!name.ok()) return name.status();
    Result<std::string> content = r.GetString();
    if (!content.ok()) return content.status();
    parts.push_back(FilePart{std::move(name.value()),
                             std::move(content.value())});
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in multipart body");
  return parts;
}

}  // namespace laminar::net
