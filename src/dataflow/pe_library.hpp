// Built-in Processing Elements: the PEs from the paper's running examples
// (isprime_wf: NumberProducer -> IsPrime -> PrintPrime), the PEs its
// semantic-search figures mention (anomaly detection, alerting, data
// normalization/aggregation), plus word-count and CPU-burn PEs used by the
// examples, tests and mapping benches.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "dataflow/pe.hpp"

namespace laminar::dataflow {

/// Emits `lo..hi` uniform random integers, one per iteration (the paper's
/// NumberProducer generating numbers for isprime_wf). Deterministic per
/// seed+rank.
class NumberProducer final : public Clonable<NumberProducer, ProducerBase> {
 public:
  explicit NumberProducer(uint64_t seed = 42, int64_t lo = 1, int64_t hi = 1000);
  void Setup(int rank, int num_ranks) override;
  void Process(std::string_view port, const Value& value, Emitter& out) override;

 private:
  uint64_t seed_;
  int64_t lo_;
  int64_t hi_;
  Rng rng_;
};

/// Forwards its input only if it is prime (Listing 1 of the paper).
class IsPrime final : public Clonable<IsPrime, IterativePE> {
 public:
  IsPrime();
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;
};

/// Prints each received prime in the paper's CLI format:
/// "the num {'input': 751} is prime".
class PrintPrime final : public Clonable<PrintPrime, ConsumerBase> {
 public:
  PrintPrime();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
};

/// Emits the elements of a configured string list, one per iteration
/// (cycling if iterations exceed the list).
class LineProducer final : public Clonable<LineProducer, ProducerBase> {
 public:
  explicit LineProducer(std::vector<std::string> lines);
  void Process(std::string_view port, const Value& value, Emitter& out) override;

 private:
  std::vector<std::string> lines_;
  size_t next_ = 0;
};

/// Splits each input line into lowercase word tuples {"word": w}.
class Tokenizer final : public Clonable<Tokenizer, IterativePE> {
 public:
  Tokenizer();
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;
};

/// Stateful word counter; emits {"word": w, "count": n} per word on Finish.
/// Use with Grouping::GroupBy("word") under parallel mappings.
class WordCounter final : public Clonable<WordCounter, ProcessingElement> {
 public:
  WordCounter();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
  void Finish(Emitter& out) override;
};

/// Collects {"word","count"} tuples and prints "word: count" lines sorted
/// by descending count on Finish.
class CountPrinter final : public Clonable<CountPrinter, ProcessingElement> {
 public:
  CountPrinter();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
  void Finish(Emitter& out) override;
};

/// Synthetic sensor: emits {"t": i, "temperature": v} readings with
/// occasional injected anomalies (deterministic per seed).
class SensorProducer final : public Clonable<SensorProducer, ProducerBase> {
 public:
  explicit SensorProducer(uint64_t seed = 7, double anomaly_rate = 0.05);
  void Setup(int rank, int num_ranks) override;
  void Process(std::string_view port, const Value& value, Emitter& out) override;

 private:
  uint64_t seed_;
  double anomaly_rate_;
  Rng rng_;
};

/// Normalizes temperature readings to [0,1] given fixed bounds
/// (the "NormalizeDataPE" of the paper's Fig. 8).
class NormalizeData final : public Clonable<NormalizeData, IterativePE> {
 public:
  NormalizeData(double min_value = -20.0, double max_value = 60.0);
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;

 private:
  double min_;
  double max_;
};

/// Stateful streaming z-score detector: forwards tuples whose reading
/// deviates more than `threshold` sigma from the running window mean
/// (the "AnomalyDetectionPE" of Fig. 8).
class AnomalyDetector final : public Clonable<AnomalyDetector, ProcessingElement> {
 public:
  explicit AnomalyDetector(double threshold = 3.0, size_t window = 64);
  void Process(std::string_view port, const Value& value, Emitter& out) override;

 private:
  double threshold_;
  size_t window_;
};

/// Prints "ALERT: ..." lines for anomalies (the "AlertingPE" of Fig. 8).
class Alerter final : public Clonable<Alerter, ConsumerBase> {
 public:
  Alerter();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
};

/// Stateful aggregator: computes count/mean/min/max of a numeric field and
/// emits one summary tuple on Finish (the "AggregateDataPE" of Fig. 8).
class AggregateData final : public Clonable<AggregateData, ProcessingElement> {
 public:
  explicit AggregateData(std::string field = "temperature");
  void Process(std::string_view port, const Value& value, Emitter& out) override;
  void Finish(Emitter& out) override;

 private:
  std::string field_;
};

/// Burns a fixed amount of CPU per tuple then forwards it — the workload
/// knob for the mapping-scaling bench.
class CpuBurn final : public Clonable<CpuBurn, IterativePE> {
 public:
  explicit CpuBurn(uint64_t iters_per_tuple = 200'000);
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;

 private:
  uint64_t iters_;
};

/// Sleeps a fixed wall-clock time per tuple then forwards it — the
/// latency-bound counterpart of CpuBurn, modelling the external-I/O waits
/// (storage, HTTP calls) that dominate real serverless PEs. Used by the
/// multi-tenant overload bench, where throughput must be governed by the
/// run scheduler rather than by raw CPU contention.
class IoWait final : public Clonable<IoWait, IterativePE> {
 public:
  explicit IoWait(int64_t millis_per_tuple = 1);
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;

 private:
  int64_t millis_;
};

/// Routes each tuple to one of two named output ports — "high" if the
/// numeric field exceeds the threshold, "low" otherwise. Exercises
/// dispel4py's multi-port PEs (every other built-in uses single default
/// ports).
class ThresholdSplitter final
    : public Clonable<ThresholdSplitter, ProcessingElement> {
 public:
  explicit ThresholdSplitter(std::string field = "value",
                             double threshold = 0.0);
  void Process(std::string_view port, const Value& value, Emitter& out) override;

 private:
  std::string field_;
  double threshold_;
};

/// Forwards its input, but throws std::runtime_error on every Nth tuple:
/// an integer tuple (or the hash of a non-integer one) divisible by
/// `every_n` fails (every_n <= 1 fails every tuple). Keying the decision on
/// the tuple value keeps it stable across retries. `heal_after` > 0 models
/// a transient fault: after that many consecutive failures of the same
/// tuple the next attempt succeeds, so a retry policy of >= heal_after
/// absorbs it (0 = failures are permanent). Used by the fault-containment
/// tests and the failure-semantics acceptance workflow.
class FaultInjector final : public Clonable<FaultInjector, IterativePE> {
 public:
  explicit FaultInjector(int64_t every_n = 2, int64_t heal_after = 0);
  std::optional<Value> ProcessItem(const Value& value, Emitter& out) override;

 private:
  int64_t every_n_;
  int64_t heal_after_;
  std::string last_failed_key_;
  int64_t consecutive_failures_ = 0;
};

/// Logs every received tuple as one line (the line-per-tuple sink the
/// streaming benches use to model real-time workflow output).
class EchoSink final : public Clonable<EchoSink, ConsumerBase> {
 public:
  EchoSink();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
};

/// Consumes tuples and counts them (sink for benches; logs total on Finish).
class NullSink final : public Clonable<NullSink, ProcessingElement> {
 public:
  NullSink();
  void Process(std::string_view port, const Value& value, Emitter& out) override;
  void Finish(Emitter& out) override;
};

}  // namespace laminar::dataflow
