// Dynamic mapping — dispel4py's Redis mapping with adaptive workload
// allocation (Liang et al. 2022; paper §II-A "Workload Allocation").
//
// Tuples are work items on per-PE broker queues; a pool of worker threads
// BLPOPs across all queues, so busy PEs automatically attract more workers
// — no static partition. An optional autoscaler grows the pool while queue
// depth per worker exceeds a threshold. Stateful PEs are serialized onto a
// single shared instance (per-PE mutex); stateless PEs run on per-worker
// clones.
#pragma once

#include "broker/broker.hpp"
#include "dataflow/mapping.hpp"

namespace laminar::dataflow {

class DynamicMapping final : public Mapping {
 public:
  /// Uses an internal private broker.
  DynamicMapping();
  /// Shares an external broker (the serverless engine passes its own, as
  /// Laminar points every execution at one Redis instance).
  explicit DynamicMapping(broker::Broker* shared_broker);

  RunResult Execute(const WorkflowGraph& graph, const RunOptions& options,
                    const LineSink& sink = nullptr) override;
  std::string_view name() const override { return "dynamic"; }

 private:
  std::unique_ptr<broker::Broker> owned_broker_;
  broker::Broker* broker_;
};

}  // namespace laminar::dataflow
