#include "dataflow/multi_mapping.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "common/concurrent_queue.hpp"
#include "common/strings.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::dataflow {
namespace {

struct Message {
  enum class Kind { kData, kEos };
  Kind kind = Kind::kData;
  std::string port;
  Value value;
};

/// Shared, thread-safe output collector.
class SharedOutput {
 public:
  SharedOutput(RunResult& result, const LineSink& sink)
      : result_(result), sink_(sink) {}

  void Log(std::string_view line) {
    std::scoped_lock lock(mu_);
    result_.output_lines.emplace_back(line);
    if (sink_) sink_(result_.output_lines.back());
  }

 private:
  std::mutex mu_;
  RunResult& result_;
  const LineSink& sink_;
};

struct RankContext {
  size_t pe_index = 0;
  int global_rank = 0;
  int local_rank = 0;
  int local_ranks = 1;
};

/// Per-rank emitter: routes each emitted tuple to the destination rank(s)
/// chosen by the edge grouping.
class RankEmitter final : public Emitter {
 public:
  RankEmitter(const WorkflowGraph& graph, const RankContext& ctx,
              const std::vector<std::pair<int, int>>& partition,
              std::vector<std::unique_ptr<ConcurrentQueue<Message>>>& queues,
              SharedOutput& output)
      : graph_(graph),
        ctx_(ctx),
        partition_(partition),
        queues_(queues),
        output_(output) {}

  void Emit(std::string_view output_port, Value value) override {
    for (const Edge* edge : graph_.OutgoingEdges(ctx_.pe_index, output_port)) {
      auto [first, last] = partition_[edge->to_pe];
      int fan = last - first;
      switch (edge->grouping.type) {
        case GroupingType::kShuffle: {
          int target = first + static_cast<int>(round_robin_[edge]++ %
                                                static_cast<uint64_t>(fan));
          queues_[static_cast<size_t>(target)]->Push(
              Message{Message::Kind::kData, edge->to_port, value});
          break;
        }
        case GroupingType::kGroupBy: {
          uint64_t h = GroupingHash(value, edge->grouping.key);
          int target = first + static_cast<int>(h % static_cast<uint64_t>(fan));
          queues_[static_cast<size_t>(target)]->Push(
              Message{Message::Kind::kData, edge->to_port, value});
          break;
        }
        case GroupingType::kOneToAll:
          for (int r = first; r < last; ++r) {
            queues_[static_cast<size_t>(r)]->Push(
                Message{Message::Kind::kData, edge->to_port, value});
          }
          break;
        case GroupingType::kAllToOne:
          queues_[static_cast<size_t>(first)]->Push(
              Message{Message::Kind::kData, edge->to_port, value});
          break;
      }
    }
  }

  void Log(std::string_view line) override { output_.Log(line); }

  /// Sends end-of-stream from this rank to every rank of every downstream PE.
  void Broadcast_Eos() {
    for (const std::string& port : graph_.Node(ctx_.pe_index).output_ports()) {
      for (const Edge* edge : graph_.OutgoingEdges(ctx_.pe_index, port)) {
        auto [first, last] = partition_[edge->to_pe];
        for (int r = first; r < last; ++r) {
          queues_[static_cast<size_t>(r)]->Push(
              Message{Message::Kind::kEos, edge->to_port, Value()});
        }
      }
    }
  }

 private:
  const WorkflowGraph& graph_;
  const RankContext& ctx_;
  const std::vector<std::pair<int, int>>& partition_;
  std::vector<std::unique_ptr<ConcurrentQueue<Message>>>& queues_;
  SharedOutput& output_;
  std::unordered_map<const Edge*, uint64_t> round_robin_;
};

}  // namespace

std::vector<std::pair<int, int>> PartitionRanks(const WorkflowGraph& graph,
                                                int num_processes) {
  size_t n = graph.NodeCount();
  std::vector<std::pair<int, int>> partition(n, {0, 0});
  std::vector<size_t> producers = graph.Producers();
  size_t consumers = n - producers.size();
  int min_needed = static_cast<int>(n);
  if (num_processes < min_needed) num_processes = min_needed;

  int spare = num_processes - static_cast<int>(producers.size());
  // Even split of the non-producer budget, first PEs get the remainder.
  int base = consumers > 0 ? spare / static_cast<int>(consumers) : 0;
  int extra = consumers > 0 ? spare % static_cast<int>(consumers) : 0;

  int next_rank = 0;
  for (size_t i = 0; i < n; ++i) {
    int count;
    if (graph.Node(i).IsProducer()) {
      count = 1;
    } else {
      count = base + (extra > 0 ? 1 : 0);
      if (extra > 0) --extra;
      if (count < 1) count = 1;
    }
    partition[i] = {next_rank, next_rank + count};
    next_rank += count;
  }
  return partition;
}

RunResult MultiMapping::Execute(const WorkflowGraph& graph,
                                const RunOptions& options,
                                const LineSink& sink) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter& enactments = registry.GetCounter(
      "laminar_dataflow_enactments_total", "mapping=\"multi\"");
  static telemetry::Counter& tuples_total = registry.GetCounter(
      "laminar_dataflow_tuples_total", "mapping=\"multi\"");
  static telemetry::Histogram& enact_ms = registry.GetHistogram(
      "laminar_dataflow_enact_ms", "mapping=\"multi\"");
  enactments.Inc();
  telemetry::ScopedSpan enact_span("mapping.multi", &enact_ms);

  RunResult result;
  Stopwatch watch;
  result.status = graph.Validate();
  if (!result.status.ok()) return result;

  std::vector<std::pair<int, int>> partition =
      PartitionRanks(graph, options.num_processes);
  int total_ranks = 0;
  for (size_t i = 0; i < graph.NodeCount(); ++i) {
    result.partition[graph.Node(i).name()] = partition[i];
    total_ranks = std::max(total_ranks, partition[i].second);
  }

  SharedOutput output(result, sink);
  if (options.verbose) {
    std::string line = "Partition: {";
    for (size_t i = 0; i < graph.NodeCount(); ++i) {
      if (i) line += ", ";
      line += "'" + graph.Node(i).name() + "': range(" +
              std::to_string(partition[i].first) + ", " +
              std::to_string(partition[i].second) + ")";
    }
    line += "}";
    output.Log(line);
  }

  // Expected EOS count per PE rank: one from every rank of every incoming
  // edge's source PE.
  std::vector<int> expected_eos(graph.NodeCount(), 0);
  for (const Edge& e : graph.Edges()) {
    expected_eos[e.to_pe] += partition[e.from_pe].second -
                             partition[e.from_pe].first;
  }

  std::vector<std::unique_ptr<ConcurrentQueue<Message>>> queues;
  queues.reserve(static_cast<size_t>(total_ranks));
  for (int r = 0; r < total_ranks; ++r) {
    queues.push_back(std::make_unique<ConcurrentQueue<Message>>());
  }

  std::atomic<uint64_t> tuples{0};
  std::atomic<bool> expired{false};
  int64_t deadline_us = DeadlineMicrosFromNow(options.deadline_ms);
  auto past_deadline = [&] {
    if (deadline_us == 0) return false;
    if (expired.load(std::memory_order_relaxed)) return true;
    if (NowMicros() > deadline_us) {
      expired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  std::vector<Value> iterations = ProducerIterations(options.input);
  FaultContext faults("multi", options);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(total_ranks));
  for (size_t pe = 0; pe < graph.NodeCount(); ++pe) {
    auto [first, last] = partition[pe];
    for (int rank = first; rank < last; ++rank) {
      threads.emplace_back([&, pe, rank, first, last] {
        RankContext ctx{pe, rank, rank - first, last - first};
        std::unique_ptr<ProcessingElement> instance = graph.Node(pe).Clone();
        instance->Setup(ctx.local_rank, ctx.local_ranks);
        RankEmitter emitter(graph, ctx, partition, queues, output);
        uint64_t processed = 0;

        if (graph.Node(pe).IsProducer()) {
          for (const Value& payload : iterations) {
            if (past_deadline()) break;
            if (faults.InvokeWithRetries(
                    [&] { instance->Process("iteration", payload, emitter); },
                    instance->name() + "[iteration]")) {
              ++processed;
            }
          }
        } else {
          int eos_remaining = expected_eos[pe];
          while (eos_remaining > 0) {
            std::optional<Message> msg =
                queues[static_cast<size_t>(rank)]->Pop();
            if (!msg.has_value()) break;  // queue closed (shutdown path)
            if (msg->kind == Message::Kind::kEos) {
              --eos_remaining;
              continue;
            }
            if (past_deadline()) continue;  // drop tuples, still await EOS
            if (faults.InvokeWithRetries(
                    [&] { instance->Process(msg->port, msg->value, emitter); },
                    instance->name() + "[" + msg->port + "]")) {
              ++processed;
            }
          }
        }
        faults.InvokeWithRetries([&] { instance->Finish(emitter); },
                                 instance->name() + "[finish]");
        emitter.Broadcast_Eos();
        tuples.fetch_add(processed, std::memory_order_relaxed);
        if (options.verbose) {
          output.Log(instance->name() + " (rank " + std::to_string(rank) +
                     "): Processed " + std::to_string(processed) +
                     " iterations.");
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();
  for (auto& q : queues) q->Close();

  result.tuples_processed = tuples.load();
  if (expired.load()) {
    result.status = Status::DeadlineExceeded(
        "execution exceeded " + std::to_string(options.deadline_ms) + " ms");
  }
  faults.Finalize(result);
  result.elapsed_ms = watch.ElapsedMillis();
  tuples_total.Inc(result.tuples_processed);
  return result;
}

}  // namespace laminar::dataflow
