#include "dataflow/pe_library.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "common/clock.hpp"
#include "common/hashing.hpp"
#include "common/strings.hpp"

namespace laminar::dataflow {

// ---- NumberProducer ----

NumberProducer::NumberProducer(uint64_t seed, int64_t lo, int64_t hi)
    : seed_(seed), lo_(lo), hi_(hi), rng_(seed) {
  set_name("NumberProducer");
  SetStateful(true);  // owns an RNG stream; must not be cloned per worker
}

void NumberProducer::Setup(int rank, int num_ranks) {
  ProcessingElement::Setup(rank, num_ranks);
  // Decorrelate parallel producer ranks while staying deterministic.
  rng_ = Rng(seed_ + static_cast<uint64_t>(rank) * 0x9e3779b9ULL);
}

void NumberProducer::Process(std::string_view, const Value&, Emitter& out) {
  out.Emit(kDefaultOutput, Value(rng_.NextInt(lo_, hi_)));
}

// ---- IsPrime ----

IsPrime::IsPrime() { set_name("IsPrime"); }

std::optional<Value> IsPrime::ProcessItem(const Value& value, Emitter&) {
  int64_t num = value.is_object() ? value.GetInt("input") : value.as_int();
  if (num < 2) return std::nullopt;
  // Same brute-force check as Listing 1: all(num % i != 0 for i in
  // range(2, num)) — intentionally O(n), it is the CPU load of the example.
  for (int64_t i = 2; i < num; ++i) {
    if (num % i == 0) return std::nullopt;
  }
  return Value(num);
}

// ---- PrintPrime ----

PrintPrime::PrintPrime() { set_name("PrintPrime"); }

void PrintPrime::Process(std::string_view, const Value& value, Emitter& out) {
  int64_t num = value.is_object() ? value.GetInt("input") : value.as_int();
  out.Log("the num {'input': " + std::to_string(num) + "} is prime");
}

// ---- LineProducer ----

LineProducer::LineProducer(std::vector<std::string> lines)
    : lines_(std::move(lines)) {
  set_name("LineProducer");
  SetStateful(true);  // cursor over the line list
}

void LineProducer::Process(std::string_view, const Value&, Emitter& out) {
  if (lines_.empty()) return;
  out.Emit(kDefaultOutput, Value(lines_[next_ % lines_.size()]));
  ++next_;
}

// ---- Tokenizer ----

Tokenizer::Tokenizer() { set_name("Tokenizer"); }

std::optional<Value> Tokenizer::ProcessItem(const Value& value, Emitter& out) {
  for (const std::string& word : strings::WordTokens(value.as_string())) {
    Value tuple = Value::MakeObject();
    tuple["word"] = word;
    out.Emit(kDefaultOutput, std::move(tuple));
  }
  return std::nullopt;
}

// ---- WordCounter ----

WordCounter::WordCounter() {
  set_name("WordCounter");
  AddInput(kDefaultInput);
  AddOutput(kDefaultOutput);
  SetStateful(true);
}

void WordCounter::Process(std::string_view, const Value& value, Emitter&) {
  const std::string& word = value.GetString("word");
  if (word.empty()) return;
  Value& counts = state()["counts"];
  counts[word] = counts.at(word).as_int() + 1;
}

void WordCounter::Finish(Emitter& out) {
  for (const auto& [word, count] : state().at("counts").as_object()) {
    Value tuple = Value::MakeObject();
    tuple["word"] = word;
    tuple["count"] = count;
    out.Emit(kDefaultOutput, std::move(tuple));
  }
}

// ---- CountPrinter ----

CountPrinter::CountPrinter() {
  set_name("CountPrinter");
  AddInput(kDefaultInput);
  SetStateful(true);
}

void CountPrinter::Process(std::string_view, const Value& value, Emitter&) {
  state()["tuples"].push_back(value);
}

void CountPrinter::Finish(Emitter& out) {
  std::vector<std::pair<std::string, int64_t>> entries;
  for (const Value& t : state().at("tuples").as_array()) {
    entries.emplace_back(t.GetString("word"), t.GetInt("count"));
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [word, count] : entries) {
    out.Log(word + ": " + std::to_string(count));
  }
}

// ---- SensorProducer ----

SensorProducer::SensorProducer(uint64_t seed, double anomaly_rate)
    : seed_(seed), anomaly_rate_(anomaly_rate), rng_(seed) {
  set_name("SensorProducer");
  SetStateful(true);  // owns an RNG stream
}

void SensorProducer::Setup(int rank, int num_ranks) {
  ProcessingElement::Setup(rank, num_ranks);
  rng_ = Rng(seed_ + static_cast<uint64_t>(rank) * 0x51ed2701ULL);
}

void SensorProducer::Process(std::string_view, const Value& value,
                             Emitter& out) {
  Value reading = Value::MakeObject();
  reading["t"] = value.as_int();
  double base = 20.0 + 2.0 * (rng_.NextDouble() - 0.5);
  bool anomaly = rng_.NextBool(anomaly_rate_);
  if (anomaly) base += rng_.NextBool() ? 35.0 : -30.0;
  reading["temperature"] = base;
  reading["injected_anomaly"] = anomaly;
  out.Emit(kDefaultOutput, std::move(reading));
}

// ---- NormalizeData ----

NormalizeData::NormalizeData(double min_value, double max_value)
    : min_(min_value), max_(max_value) {
  set_name("NormalizeData");
}

std::optional<Value> NormalizeData::ProcessItem(const Value& value, Emitter&) {
  Value out = value;
  double t = value.GetDouble("temperature");
  double norm = (t - min_) / (max_ - min_);
  out["normalized"] = std::clamp(norm, 0.0, 1.0);
  return out;
}

// ---- AnomalyDetector ----

AnomalyDetector::AnomalyDetector(double threshold, size_t window)
    : threshold_(threshold), window_(window) {
  set_name("AnomalyDetector");
  AddInput(kDefaultInput);
  AddOutput(kDefaultOutput);
  SetStateful(true);
}

void AnomalyDetector::Process(std::string_view, const Value& value,
                              Emitter& out) {
  double x = value.GetDouble("temperature");
  Value& win = state()["window"];
  const Value::Array& samples = win.as_array();
  if (samples.size() >= 8) {  // need a minimal window before judging
    double sum = 0, sq = 0;
    for (const Value& s : samples) {
      double v = s.as_double();
      sum += v;
      sq += v * v;
    }
    double n = static_cast<double>(samples.size());
    double mean = sum / n;
    double variance = std::max(sq / n - mean * mean, 1e-9);
    double z = (x - mean) / std::sqrt(variance);
    if (std::abs(z) > threshold_) {
      Value alert = value;
      alert["zscore"] = z;
      out.Emit(kDefaultOutput, std::move(alert));
      return;  // anomalies stay out of the window estimate
    }
  }
  win.push_back(x);
  if (win.as_array().size() > window_) {
    Value::Array& arr = win.mutable_array();
    arr.erase(arr.begin());
  }
}

// ---- Alerter ----

Alerter::Alerter() { set_name("Alerter"); }

void Alerter::Process(std::string_view, const Value& value, Emitter& out) {
  out.Log("ALERT: t=" + std::to_string(value.GetInt("t")) + " temperature=" +
          strings::Format("%.2f", value.GetDouble("temperature")) +
          " z=" + strings::Format("%.2f", value.GetDouble("zscore")));
}

// ---- AggregateData ----

AggregateData::AggregateData(std::string field) : field_(std::move(field)) {
  set_name("AggregateData");
  AddInput(kDefaultInput);
  AddOutput(kDefaultOutput);
  SetStateful(true);
}

void AggregateData::Process(std::string_view, const Value& value, Emitter&) {
  double x = value.GetDouble(field_);
  Value& agg = state();
  int64_t count = agg.GetInt("count");
  agg["count"] = count + 1;
  agg["sum"] = agg.GetDouble("sum") + x;
  agg["min"] = count == 0 ? x : std::min(agg.GetDouble("min"), x);
  agg["max"] = count == 0 ? x : std::max(agg.GetDouble("max"), x);
}

void AggregateData::Finish(Emitter& out) {
  int64_t count = state().GetInt("count");
  if (count == 0) return;
  Value summary = Value::MakeObject();
  summary["field"] = field_;
  summary["count"] = count;
  summary["mean"] = state().GetDouble("sum") / static_cast<double>(count);
  summary["min"] = state().GetDouble("min");
  summary["max"] = state().GetDouble("max");
  out.Emit(kDefaultOutput, std::move(summary));
}

// ---- CpuBurn ----

CpuBurn::CpuBurn(uint64_t iters_per_tuple) : iters_(iters_per_tuple) {
  set_name("CpuBurn");
}

std::optional<Value> CpuBurn::ProcessItem(const Value& value, Emitter&) {
  uint64_t sink = BusyWork(iters_);
  Value out = value;
  if (out.is_object()) out["burn"] = static_cast<int64_t>(sink & 0xFF);
  return out;
}

// ---- IoWait ----

IoWait::IoWait(int64_t millis_per_tuple)
    : millis_(std::max<int64_t>(millis_per_tuple, 0)) {
  set_name("IoWait");
}

std::optional<Value> IoWait::ProcessItem(const Value& value, Emitter&) {
  if (millis_ > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(millis_));
  }
  return value;
}

// ---- ThresholdSplitter ----

ThresholdSplitter::ThresholdSplitter(std::string field, double threshold)
    : field_(std::move(field)), threshold_(threshold) {
  set_name("ThresholdSplitter");
  AddInput(kDefaultInput);
  AddOutput("high");
  AddOutput("low");
}

void ThresholdSplitter::Process(std::string_view, const Value& value,
                                Emitter& out) {
  double x = value.is_object() ? value.GetDouble(field_) : value.as_double();
  out.Emit(x > threshold_ ? "high" : "low", value);
}

// ---- FaultInjector ----

FaultInjector::FaultInjector(int64_t every_n, int64_t heal_after)
    : every_n_(std::max<int64_t>(every_n, 1)),
      heal_after_(std::max<int64_t>(heal_after, 0)) {
  set_name("FaultInjector");
}

std::optional<Value> FaultInjector::ProcessItem(const Value& value,
                                                Emitter&) {
  std::string key = value.ToJson();
  int64_t n = value.is_int()
                  ? value.as_int()
                  : static_cast<int64_t>(hashing::Fnv1a64(key) >> 1);
  if (n % every_n_ != 0) return value;
  if (heal_after_ > 0 && key == last_failed_key_ &&
      consecutive_failures_ >= heal_after_) {
    last_failed_key_.clear();
    consecutive_failures_ = 0;
    return value;  // transient fault healed; the retry succeeds
  }
  if (key == last_failed_key_) {
    ++consecutive_failures_;
  } else {
    last_failed_key_ = key;
    consecutive_failures_ = 1;
  }
  throw std::runtime_error("injected fault on tuple " + key);
}

// ---- EchoSink ----

EchoSink::EchoSink() { set_name("EchoSink"); }

void EchoSink::Process(std::string_view, const Value& value, Emitter& out) {
  out.Log(value.ToJson());
}

// ---- NullSink ----

NullSink::NullSink() {
  set_name("NullSink");
  AddInput(kDefaultInput);
  SetStateful(true);
}

void NullSink::Process(std::string_view, const Value&, Emitter&) {
  state()["count"] = state().GetInt("count") + 1;
}

void NullSink::Finish(Emitter& out) {
  // Silent when this instance saw nothing: under parallel mappings some
  // ranks legitimately receive zero tuples, and their logs would otherwise
  // differ from the sequential reference output.
  int64_t count = state().GetInt("count");
  if (count > 0) {
    out.Log("NullSink received " + std::to_string(count) + " tuples");
  }
}

}  // namespace laminar::dataflow
