#include "dataflow/sequential_mapping.hpp"

#include <deque>
#include <optional>

#include "common/clock.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::dataflow {
namespace {

struct PendingTuple {
  size_t pe;
  std::string port;
  Value value;
};

/// Emitter that appends downstream tuples to the scheduler queue.
class SequentialEmitter final : public Emitter {
 public:
  SequentialEmitter(const WorkflowGraph& graph, size_t pe_index,
                    std::deque<PendingTuple>& queue, RunResult& result,
                    const LineSink& sink)
      : graph_(graph),
        pe_index_(pe_index),
        queue_(queue),
        result_(result),
        sink_(sink) {}

  void Emit(std::string_view output_port, Value value) override {
    for (const Edge* edge : graph_.OutgoingEdges(pe_index_, output_port)) {
      queue_.push_back(PendingTuple{edge->to_pe, edge->to_port, value});
    }
  }

  void Log(std::string_view line) override {
    result_.output_lines.emplace_back(line);
    if (sink_) sink_(result_.output_lines.back());
  }

  void set_pe(size_t pe_index) { pe_index_ = pe_index; }

 private:
  const WorkflowGraph& graph_;
  size_t pe_index_;
  std::deque<PendingTuple>& queue_;
  RunResult& result_;
  const LineSink& sink_;
};

}  // namespace

RunResult SequentialMapping::Execute(const WorkflowGraph& graph,
                                     const RunOptions& options,
                                     const LineSink& sink) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter& enactments = registry.GetCounter(
      "laminar_dataflow_enactments_total", "mapping=\"simple\"");
  static telemetry::Counter& tuples_total = registry.GetCounter(
      "laminar_dataflow_tuples_total", "mapping=\"simple\"");
  static telemetry::Histogram& enact_ms = registry.GetHistogram(
      "laminar_dataflow_enact_ms", "mapping=\"simple\"");
  enactments.Inc();
  telemetry::ScopedSpan enact_span("mapping.simple", &enact_ms);

  RunResult result;
  Stopwatch watch;
  result.status = graph.Validate();
  if (!result.status.ok()) return result;

  // One instance per PE (clones, so the prototype graph stays reusable).
  std::vector<std::unique_ptr<ProcessingElement>> instances;
  instances.reserve(graph.NodeCount());
  for (size_t i = 0; i < graph.NodeCount(); ++i) {
    instances.push_back(graph.Node(i).Clone());
    instances.back()->Setup(/*rank=*/0, /*num_ranks=*/1);
    result.partition[graph.Node(i).name()] = {0, 1};
  }

  std::deque<PendingTuple> queue;
  SequentialEmitter emitter(graph, 0, queue, result, sink);
  FaultContext faults("simple", options);

  // Serverless duration limit (§II-B "limited execution duration").
  int64_t deadline_us = DeadlineMicrosFromNow(options.deadline_ms);
  bool expired = false;
  auto past_deadline = [&] {
    if (deadline_us != 0 && NowMicros() > deadline_us) expired = true;
    return expired;
  };

  auto drain = [&] {
    while (!queue.empty() && !past_deadline()) {
      PendingTuple t = std::move(queue.front());
      queue.pop_front();
      emitter.set_pe(t.pe);
      // Trace 1-in-64 PE process calls: enough for the span view to show
      // enact -> pe.process nesting without per-tuple ring churn.
      std::optional<telemetry::ScopedSpan> pe_span;
      if ((result.tuples_processed & 63) == 0) pe_span.emplace("pe.process");
      if (faults.InvokeWithRetries(
              [&] { instances[t.pe]->Process(t.port, t.value, emitter); },
              graph.Node(t.pe).name() + "[" + t.port + "]")) {
        ++result.tuples_processed;
      }
      pe_span.reset();
    }
  };

  // Drive producers.
  std::vector<Value> iterations = ProducerIterations(options.input);
  for (size_t producer : graph.Producers()) {
    for (const Value& payload : iterations) {
      if (past_deadline()) break;
      emitter.set_pe(producer);
      if (faults.InvokeWithRetries(
              [&] {
                instances[producer]->Process("iteration", payload, emitter);
              },
              graph.Node(producer).name() + "[iteration]")) {
        ++result.tuples_processed;
      }
      drain();
    }
  }

  // Finish in topological order so upstream flushes reach downstream PEs.
  Result<std::vector<size_t>> topo = graph.TopologicalOrder();
  if (topo.ok()) {
    for (size_t pe : topo.value()) {
      emitter.set_pe(pe);
      faults.InvokeWithRetries([&] { instances[pe]->Finish(emitter); },
                               graph.Node(pe).name() + "[finish]");
      drain();
    }
  }

  if (options.verbose) {
    for (size_t i = 0; i < instances.size(); ++i) {
      emitter.set_pe(i);
      emitter.Log(instances[i]->name() + " (rank 0): sequential execution.");
    }
  }
  if (expired) {
    result.status = Status::DeadlineExceeded(
        "execution exceeded " + std::to_string(options.deadline_ms) + " ms");
  }
  faults.Finalize(result);
  result.elapsed_ms = watch.ElapsedMillis();
  tuples_total.Inc(result.tuples_processed);
  return result;
}

}  // namespace laminar::dataflow
