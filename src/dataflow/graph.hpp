// Abstract workflow graphs (paper §II-A): a DAG whose nodes are PEs and
// whose edges are data streams with a grouping (routing) policy. The user
// describes the abstract graph; a Mapping turns it into the concrete,
// executable workflow.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dataflow/pe.hpp"

namespace laminar::dataflow {

/// How tuples on an edge are routed among the consumer's parallel ranks.
enum class GroupingType {
  kShuffle,   ///< round-robin (default)
  kGroupBy,   ///< hash of a key field -> same rank for same key
  kOneToAll,  ///< broadcast to every rank
  kAllToOne,  ///< everything to rank 0
};

struct Grouping {
  GroupingType type = GroupingType::kShuffle;
  /// For kGroupBy: object field to hash; tuples missing the field hash to
  /// their whole JSON encoding.
  std::string key;

  static Grouping Shuffle() { return {}; }
  static Grouping GroupBy(std::string key) {
    return Grouping{GroupingType::kGroupBy, std::move(key)};
  }
  static Grouping OneToAll() { return Grouping{GroupingType::kOneToAll, {}}; }
  static Grouping AllToOne() { return Grouping{GroupingType::kAllToOne, {}}; }
};

struct Edge {
  size_t from_pe = 0;
  std::string from_port;
  size_t to_pe = 0;
  std::string to_port;
  Grouping grouping;
};

class WorkflowGraph {
 public:
  WorkflowGraph() = default;
  explicit WorkflowGraph(std::string name) : name_(std::move(name)) {}

  WorkflowGraph(const WorkflowGraph&) = delete;
  WorkflowGraph& operator=(const WorkflowGraph&) = delete;
  WorkflowGraph(WorkflowGraph&&) = default;
  WorkflowGraph& operator=(WorkflowGraph&&) = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a PE; the graph takes ownership. Returns the node index.
  size_t Add(std::unique_ptr<ProcessingElement> pe);

  /// Constructs and adds a PE in place; returns a reference valid for the
  /// graph's lifetime.
  template <typename T, typename... Args>
  T& AddPE(Args&&... args) {
    auto pe = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *pe;
    Add(std::move(pe));
    return ref;
  }

  /// Merges another graph's PEs and edges into this one (dispel4py's
  /// composite-PE pattern: build a reusable sub-pipeline, then splice it
  /// into a larger workflow). Returns the index offset of the merged nodes:
  /// node i of `sub` becomes node (offset + i) here. `sub` is consumed.
  size_t Merge(WorkflowGraph&& sub);

  /// Connects from_pe.out_port -> to_pe.in_port. Validates node indexes and
  /// port names.
  Status Connect(size_t from_pe, std::string_view out_port, size_t to_pe,
                 std::string_view in_port, Grouping grouping = {});
  /// Convenience: default ports.
  Status Connect(size_t from_pe, size_t to_pe, Grouping grouping = {});
  /// Convenience: connect by PE references previously added via AddPE.
  Status Connect(const ProcessingElement& from, const ProcessingElement& to,
                 Grouping grouping = {});

  size_t NodeCount() const { return nodes_.size(); }
  ProcessingElement& Node(size_t index) { return *nodes_[index]; }
  const ProcessingElement& Node(size_t index) const { return *nodes_[index]; }
  const std::vector<Edge>& Edges() const { return edges_; }

  /// Index of a previously added PE (by identity); nodes_.size() if absent.
  size_t IndexOf(const ProcessingElement& pe) const;

  /// Edges leaving (pe, port).
  std::vector<const Edge*> OutgoingEdges(size_t pe,
                                         std::string_view port) const;
  /// Edges entering pe on any port.
  std::vector<const Edge*> IncomingEdges(size_t pe) const;

  /// Node indexes of PEs with no input ports.
  std::vector<size_t> Producers() const;

  /// Topological order; fails if the graph has a cycle.
  Result<std::vector<size_t>> TopologicalOrder() const;

  /// Full validation: non-empty, at least one producer, acyclic, every node
  /// reachable from a producer, all ports wired consistently.
  Status Validate() const;

 private:
  std::string name_ = "workflow";
  std::vector<std::unique_ptr<ProcessingElement>> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace laminar::dataflow
