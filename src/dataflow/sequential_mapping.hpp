// Sequential mapping: single-threaded reference execution. Every mapping
// must produce the same multiset of output lines as this one (the property
// tests in tests/mapping_equivalence_test.cpp rely on it).
#pragma once

#include "dataflow/mapping.hpp"

namespace laminar::dataflow {

class SequentialMapping final : public Mapping {
 public:
  RunResult Execute(const WorkflowGraph& graph, const RunOptions& options,
                    const LineSink& sink = nullptr) override;
  std::string_view name() const override { return "simple"; }
};

}  // namespace laminar::dataflow
