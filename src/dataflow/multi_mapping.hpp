// Multi mapping — dispel4py's `multiprocessing` mapping: static workload
// distribution. The requested process count is partitioned across PEs
// (producers get one rank; the rest are split evenly), each rank runs on its
// own thread with a private PE clone and an inbound tuple queue, and edges
// route tuples between ranks according to their grouping.
//
// Threads stand in for OS processes (DESIGN.md): the scheduling, partitioning
// and message-passing structure — what the paper's Fig. 5b demonstrates — is
// identical; only the address-space isolation differs.
#pragma once

#include "dataflow/mapping.hpp"

namespace laminar::dataflow {

/// Computes the static rank partition: PE index -> [first, last) global
/// ranks. Producers are pinned to one rank; remaining ranks are split as
/// evenly as possible over the other PEs (every PE gets at least one).
/// `num_processes` is raised to the minimum feasible count if too small.
std::vector<std::pair<int, int>> PartitionRanks(const WorkflowGraph& graph,
                                                int num_processes);

class MultiMapping final : public Mapping {
 public:
  RunResult Execute(const WorkflowGraph& graph, const RunOptions& options,
                    const LineSink& sink = nullptr) override;
  std::string_view name() const override { return "multi"; }
};

}  // namespace laminar::dataflow
