#include "dataflow/pe.hpp"

#include <algorithm>

namespace laminar::dataflow {

bool ProcessingElement::HasInputPort(std::string_view port) const {
  return std::find(inputs_.begin(), inputs_.end(), port) != inputs_.end();
}

bool ProcessingElement::HasOutputPort(std::string_view port) const {
  return std::find(outputs_.begin(), outputs_.end(), port) != outputs_.end();
}

}  // namespace laminar::dataflow
