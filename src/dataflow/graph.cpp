#include "dataflow/graph.hpp"

#include <deque>
#include <unordered_set>

namespace laminar::dataflow {

size_t WorkflowGraph::Add(std::unique_ptr<ProcessingElement> pe) {
  nodes_.push_back(std::move(pe));
  return nodes_.size() - 1;
}

size_t WorkflowGraph::Merge(WorkflowGraph&& sub) {
  size_t offset = nodes_.size();
  for (auto& node : sub.nodes_) {
    nodes_.push_back(std::move(node));
  }
  for (Edge& e : sub.edges_) {
    e.from_pe += offset;
    e.to_pe += offset;
    edges_.push_back(std::move(e));
  }
  sub.nodes_.clear();
  sub.edges_.clear();
  return offset;
}

Status WorkflowGraph::Connect(size_t from_pe, std::string_view out_port,
                              size_t to_pe, std::string_view in_port,
                              Grouping grouping) {
  if (from_pe >= nodes_.size() || to_pe >= nodes_.size()) {
    return Status::InvalidArgument("Connect: node index out of range");
  }
  if (!nodes_[from_pe]->HasOutputPort(out_port)) {
    return Status::InvalidArgument("PE '" + nodes_[from_pe]->name() +
                                   "' has no output port '" +
                                   std::string(out_port) + "'");
  }
  if (!nodes_[to_pe]->HasInputPort(in_port)) {
    return Status::InvalidArgument("PE '" + nodes_[to_pe]->name() +
                                   "' has no input port '" +
                                   std::string(in_port) + "'");
  }
  edges_.push_back(Edge{from_pe, std::string(out_port), to_pe,
                        std::string(in_port), std::move(grouping)});
  return Status::Ok();
}

Status WorkflowGraph::Connect(size_t from_pe, size_t to_pe, Grouping grouping) {
  return Connect(from_pe, kDefaultOutput, to_pe, kDefaultInput,
                 std::move(grouping));
}

Status WorkflowGraph::Connect(const ProcessingElement& from,
                              const ProcessingElement& to, Grouping grouping) {
  size_t from_idx = IndexOf(from);
  size_t to_idx = IndexOf(to);
  if (from_idx == nodes_.size() || to_idx == nodes_.size()) {
    return Status::InvalidArgument("Connect: PE not owned by this graph");
  }
  return Connect(from_idx, to_idx, std::move(grouping));
}

size_t WorkflowGraph::IndexOf(const ProcessingElement& pe) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].get() == &pe) return i;
  }
  return nodes_.size();
}

std::vector<const Edge*> WorkflowGraph::OutgoingEdges(
    size_t pe, std::string_view port) const {
  std::vector<const Edge*> out;
  for (const Edge& e : edges_) {
    if (e.from_pe == pe && e.from_port == port) out.push_back(&e);
  }
  return out;
}

std::vector<const Edge*> WorkflowGraph::IncomingEdges(size_t pe) const {
  std::vector<const Edge*> out;
  for (const Edge& e : edges_) {
    if (e.to_pe == pe) out.push_back(&e);
  }
  return out;
}

std::vector<size_t> WorkflowGraph::Producers() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->IsProducer()) out.push_back(i);
  }
  return out;
}

Result<std::vector<size_t>> WorkflowGraph::TopologicalOrder() const {
  std::vector<size_t> indegree(nodes_.size(), 0);
  for (const Edge& e : edges_) ++indegree[e.to_pe];
  std::deque<size_t> ready;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<size_t> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    size_t n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const Edge& e : edges_) {
      if (e.from_pe == n && --indegree[e.to_pe] == 0) {
        ready.push_back(e.to_pe);
      }
    }
  }
  if (order.size() != nodes_.size()) {
    return Status::InvalidArgument("workflow graph contains a cycle");
  }
  return order;
}

Status WorkflowGraph::Validate() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("workflow graph is empty");
  }
  std::vector<size_t> producers = Producers();
  if (producers.empty()) {
    return Status::InvalidArgument("workflow graph has no producer PE");
  }
  Result<std::vector<size_t>> topo = TopologicalOrder();
  if (!topo.ok()) return topo.status();
  // Reachability from producers.
  std::unordered_set<size_t> reached(producers.begin(), producers.end());
  std::deque<size_t> frontier(producers.begin(), producers.end());
  while (!frontier.empty()) {
    size_t n = frontier.front();
    frontier.pop_front();
    for (const Edge& e : edges_) {
      if (e.from_pe == n && reached.insert(e.to_pe).second) {
        frontier.push_back(e.to_pe);
      }
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!reached.contains(i)) {
      return Status::InvalidArgument("PE '" + nodes_[i]->name() +
                                     "' is unreachable from any producer");
    }
  }
  // Every non-producer input port must be fed by at least one edge.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (const std::string& port : nodes_[i]->input_ports()) {
      bool fed = false;
      for (const Edge& e : edges_) {
        if (e.to_pe == i && e.to_port == port) {
          fed = true;
          break;
        }
      }
      if (!fed) {
        return Status::InvalidArgument("input port '" + port + "' of PE '" +
                                       nodes_[i]->name() + "' is not connected");
      }
    }
  }
  return Status::Ok();
}

}  // namespace laminar::dataflow
