// Processing Elements — the fundamental computation units of dispel4py
// workflows (paper §II-A).
//
// A PE consumes tuples on named input ports, emits tuples on named output
// ports, and may keep per-instance state between tuples. Mappings clone PEs
// (one instance per parallel rank), so every concrete PE must be clonable —
// derive through Clonable<> or provide Clone() directly.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/value.hpp"

namespace laminar::dataflow {

inline constexpr std::string_view kDefaultInput = "input";
inline constexpr std::string_view kDefaultOutput = "output";

/// Sink for a PE's outputs during Process/Finish. Implemented by each
/// mapping; also carries the workflow's line-oriented stdout (which the
/// serverless engine streams to the client).
class Emitter {
 public:
  virtual ~Emitter() = default;
  /// Emits a tuple on an output port.
  virtual void Emit(std::string_view output_port, Value value) = 0;
  /// Writes one line to the workflow's stdout stream.
  virtual void Log(std::string_view line) = 0;
};

class ProcessingElement {
 public:
  virtual ~ProcessingElement() = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<std::string>& input_ports() const { return inputs_; }
  const std::vector<std::string>& output_ports() const { return outputs_; }
  bool HasInputPort(std::string_view port) const;
  bool HasOutputPort(std::string_view port) const;

  /// A producer has no input ports; mappings drive it from the run input.
  bool IsProducer() const { return inputs_.empty(); }

  /// Stateful PEs are serialized onto a single instance by the dynamic
  /// mapping (and may rely on state_ across tuples in any mapping).
  bool stateful() const { return stateful_; }

  /// Free-form per-instance state; cloned with the PE.
  Value& state() { return state_; }
  const Value& state() const { return state_; }

  /// Called once per instance before any tuple, with this instance's rank
  /// and the PE's total rank count under the active mapping.
  virtual void Setup(int rank, int num_ranks) {
    rank_ = rank;
    num_ranks_ = num_ranks;
  }

  /// Handles one tuple arriving on `input_port`. For producers, the mapping
  /// calls this once per requested iteration with port "iteration" and the
  /// iteration payload.
  virtual void Process(std::string_view input_port, const Value& value,
                       Emitter& out) = 0;

  /// Called once per instance after the input streams end; emit any
  /// aggregated results here.
  virtual void Finish(Emitter& out) { (void)out; }

  /// Deep copy for per-rank instantiation.
  virtual std::unique_ptr<ProcessingElement> Clone() const = 0;

  int rank() const { return rank_; }
  int num_ranks() const { return num_ranks_; }

 protected:
  ProcessingElement() = default;
  ProcessingElement(const ProcessingElement&) = default;
  ProcessingElement& operator=(const ProcessingElement&) = default;

  void AddInput(std::string_view port) { inputs_.emplace_back(port); }
  void AddOutput(std::string_view port) { outputs_.emplace_back(port); }
  void SetStateful(bool stateful) { stateful_ = stateful; }

 private:
  std::string name_ = "PE";
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  Value state_;
  bool stateful_ = false;
  int rank_ = 0;
  int num_ranks_ = 1;
};

/// CRTP mixin providing Clone() via the derived copy constructor.
template <typename Derived, typename Base = ProcessingElement>
class Clonable : public Base {
 public:
  using Base::Base;
  std::unique_ptr<ProcessingElement> Clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// dispel4py's IterativePE: one input, one output. Override ProcessItem; a
/// returned value is emitted on the default output, nullopt emits nothing.
class IterativePE : public ProcessingElement {
 public:
  IterativePE() {
    AddInput(kDefaultInput);
    AddOutput(kDefaultOutput);
  }
  void Process(std::string_view input_port, const Value& value,
               Emitter& out) override {
    (void)input_port;
    if (std::optional<Value> result = ProcessItem(value, out)) {
      out.Emit(kDefaultOutput, std::move(*result));
    }
  }
  virtual std::optional<Value> ProcessItem(const Value& value, Emitter& out) = 0;
};

/// dispel4py's ProducerPE: no inputs, one output. The mapping invokes
/// Process once per iteration with the iteration index.
class ProducerBase : public ProcessingElement {
 public:
  ProducerBase() { AddOutput(kDefaultOutput); }
};

/// dispel4py's ConsumerPE: one input, no outputs.
class ConsumerBase : public ProcessingElement {
 public:
  ConsumerBase() { AddInput(kDefaultInput); }
};

/// A stateless IterativePE wrapping a plain function — handy in tests and
/// examples.
class FunctionPE final : public Clonable<FunctionPE, IterativePE> {
 public:
  using Fn = std::function<std::optional<Value>(const Value&)>;
  explicit FunctionPE(Fn fn, std::string name = "FunctionPE")
      : fn_(std::move(fn)) {
    set_name(std::move(name));
  }
  std::optional<Value> ProcessItem(const Value& value, Emitter&) override {
    return fn_(value);
  }

 private:
  Fn fn_;
};

}  // namespace laminar::dataflow
