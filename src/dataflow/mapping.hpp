// Mappings translate an abstract workflow graph onto an execution substrate
// (paper §II-A): Sequential (simple), Multi (static rank partitioning over
// threads — dispel4py's multiprocessing mapping), and Dynamic (broker-fed
// worker pool with autoscaling — dispel4py's Redis mapping).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "dataflow/graph.hpp"

namespace laminar::dataflow {

/// Receives workflow stdout line by line (thread-safe to call from any
/// mapping thread). The serverless engine bridges this into the HTTP/2
/// response stream; nullptr sinks are allowed (lines are still collected in
/// RunResult).
using LineSink = std::function<void(const std::string&)>;

struct RunOptions {
  /// Producer seed: an integer N drives each producer N times with the
  /// iteration index; an array drives once per element; any other value
  /// drives exactly once.
  Value input = Value(1);
  /// Multi mapping: total rank count to partition across PEs.
  int num_processes = 4;
  /// Dynamic mapping: worker pool shape.
  int initial_workers = 2;
  int max_workers = 8;
  bool autoscale = true;
  /// Dynamic mapping: queue depth per worker that triggers scale-up.
  int autoscale_queue_per_worker = 4;
  /// Print per-rank iteration summaries (the paper's -v output).
  bool verbose = false;
  /// Serverless duration limit in milliseconds (0 = none). A run that
  /// exceeds it stops processing further tuples and reports
  /// kDeadlineExceeded; output produced before the cutoff is kept.
  double deadline_ms = 0.0;
};

struct RunResult {
  Status status;
  /// Workflow stdout in emission order.
  std::vector<std::string> output_lines;
  /// Tuples processed across all PEs and ranks.
  uint64_t tuples_processed = 0;
  double elapsed_ms = 0.0;
  /// PE name -> [first_rank, last_rank) under the Multi mapping;
  /// PE name -> instance count elsewhere.
  std::map<std::string, std::pair<int, int>> partition;
  /// Dynamic mapping: peak concurrent workers.
  int peak_workers = 0;
};

class Mapping {
 public:
  virtual ~Mapping() = default;
  /// Executes the workflow. The graph's PEs are used as prototypes and
  /// cloned per rank; the graph itself is not mutated.
  virtual RunResult Execute(const WorkflowGraph& graph,
                            const RunOptions& options,
                            const LineSink& sink = nullptr) = 0;
  virtual std::string_view name() const = 0;
};

/// Expands RunOptions::input into the per-iteration payloads fed to each
/// producer (see RunOptions::input).
std::vector<Value> ProducerIterations(const Value& input);

/// Stable routing hash for kGroupBy: hashes the grouping key field of the
/// tuple (or its full JSON if the field is missing).
uint64_t GroupingHash(const Value& tuple, const std::string& key);

}  // namespace laminar::dataflow
