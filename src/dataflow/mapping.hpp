// Mappings translate an abstract workflow graph onto an execution substrate
// (paper §II-A): Sequential (simple), Multi (static rank partitioning over
// threads — dispel4py's multiprocessing mapping), and Dynamic (broker-fed
// worker pool with autoscaling — dispel4py's Redis mapping).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/value.hpp"
#include "dataflow/graph.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::dataflow {

/// Receives workflow stdout line by line (thread-safe to call from any
/// mapping thread). The serverless engine bridges this into the HTTP/2
/// response stream; nullptr sinks are allowed (lines are still collected in
/// RunResult).
using LineSink = std::function<void(const std::string&)>;

struct RunOptions {
  /// Producer seed: an integer N drives each producer N times with the
  /// iteration index; an array drives once per element; any other value
  /// drives exactly once.
  Value input = Value(1);
  /// Multi mapping: total rank count to partition across PEs.
  int num_processes = 4;
  /// Dynamic mapping: worker pool shape.
  int initial_workers = 2;
  int max_workers = 8;
  bool autoscale = true;
  /// Dynamic mapping: queue depth per worker that triggers scale-up.
  int autoscale_queue_per_worker = 4;
  /// Dynamic mapping data plane: emitted tuples accumulate in
  /// per-destination send buffers and are flushed to the broker with one
  /// batched push when a buffer reaches send_batch_size items or its oldest
  /// item exceeds send_batch_max_delay_ms, whichever comes first; workers
  /// drain up to recv_batch_size items per blocking pop. Per-edge FIFO
  /// order is preserved. 1/1 restores the per-tuple (unbatched) protocol.
  /// Micro-batching trades up to send_batch_max_delay_ms of per-tuple
  /// latency for a large cut in broker lock/wake traffic.
  int send_batch_size = 32;
  double send_batch_max_delay_ms = 1.0;
  int recv_batch_size = 32;
  /// Print per-rank iteration summaries (the paper's -v output).
  bool verbose = false;
  /// Serverless duration limit in milliseconds (0 = none). A run that
  /// exceeds it stops processing further tuples and reports
  /// kDeadlineExceeded; output produced before the cutoff is kept.
  double deadline_ms = 0.0;
  /// Namespace prefix for this run's broker keys (dynamic mapping). The
  /// run's keys become `<run_scope>wf:N:*`; empty (the default) keeps the
  /// legacy `wf:N:*` keys. The server sets `t:<tenant>:` for non-default
  /// tenants so one tenant's runs are scoped apart in the shared broker.
  std::string run_scope;
  /// Fault containment: a tuple whose Process throws is retried up to
  /// max_retries times (exponential backoff: retry_backoff_ms doubling per
  /// attempt, capped at 250 ms) before it is quarantined on the run's
  /// dead-letter queue. Retries re-run Process on the same instance, so
  /// emissions from failed attempts may duplicate (at-least-once).
  int max_retries = 0;
  double retry_backoff_ms = 0.0;
};

struct RunResult {
  Status status;
  /// Workflow stdout in emission order.
  std::vector<std::string> output_lines;
  /// Tuples processed across all PEs and ranks.
  uint64_t tuples_processed = 0;
  double elapsed_ms = 0.0;
  /// PE name -> [first_rank, last_rank) under the Multi mapping;
  /// PE name -> instance count elsewhere.
  std::map<std::string, std::pair<int, int>> partition;
  /// Dynamic mapping: peak concurrent workers.
  int peak_workers = 0;
  /// Fault containment: tuples that permanently failed after exhausting the
  /// retry policy (a partial failure downgrades an otherwise-OK status to
  /// kInternal with a summary; tuples_processed counts successes only).
  uint64_t failed_tuples = 0;
  /// Retry attempts spent across all tuples.
  uint64_t retries = 0;
  /// Items quarantined on the run's dead-letter queue: permanent Process
  /// failures plus undecodable/unroutable work items. Under the dynamic
  /// mapping these are mirrored onto the broker's `wf:N:dlq` list for the
  /// run's lifetime (deleted with the run's other keys on exit).
  uint64_t dlq_depth = 0;
  /// First few failure messages ("pe[port]: what()"), for diagnostics.
  std::vector<std::string> error_samples;
};

class Mapping {
 public:
  virtual ~Mapping() = default;
  /// Executes the workflow. The graph's PEs are used as prototypes and
  /// cloned per rank; the graph itself is not mutated.
  virtual RunResult Execute(const WorkflowGraph& graph,
                            const RunOptions& options,
                            const LineSink& sink = nullptr) = 0;
  virtual std::string_view name() const = 0;
};

/// Per-run fault-containment context shared by the three mappings
/// (thread-safe). Converts PE throws into recorded per-tuple failures
/// instead of process death, applying the run's bounded
/// retry-with-exponential-backoff policy, and mirrors totals into the
/// process telemetry counters (laminar_dataflow_tuple_failures_total,
/// laminar_dataflow_retries_total, laminar_dataflow_dlq_total,
/// laminar_dataflow_decode_failures_total; all labelled mapping="...").
class FaultContext {
 public:
  FaultContext(std::string_view mapping, const RunOptions& options);

  /// Runs one tuple through `attempt` under the retry policy. Returns true
  /// on success; on exhaustion records the failure (context + the throw's
  /// what()) and returns false — the caller quarantines the tuple.
  bool InvokeWithRetries(const std::function<void()>& attempt,
                         const std::string& context);

  /// Continues the retry policy after the caller already ran — and caught —
  /// the first attempt itself. Hot loops invoke the tuple inline (no
  /// closure, no context string) and only pay for both here, on the cold
  /// failure path. `first_error` is the what() of the caught throw.
  bool RetryAfterFailure(const std::function<void()>& attempt,
                         const std::string& context, std::string first_error);

  /// Records a work item that cannot even reach a PE (undecodable payload,
  /// unroutable queue key). Counted as a decode failure and a DLQ item,
  /// not as a retryable tuple failure.
  void RecordDecodeFailure(const std::string& error);

  uint64_t failures() const {
    return failures_.load(std::memory_order_relaxed);
  }
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t dlq_items() const { return dlq_.load(std::memory_order_relaxed); }

  /// Copies totals into the result and, if any item failed while the run
  /// status is otherwise OK, downgrades it to kInternal with a failure
  /// summary (deadline/validation errors keep precedence).
  void Finalize(RunResult& result) const;

 private:
  void RecordSample(const std::string& error);

  const int max_retries_;
  const double backoff_ms_;
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> dlq_{0};
  std::atomic<uint64_t> decode_failures_{0};
  mutable std::mutex samples_mu_;
  std::vector<std::string> samples_;
  telemetry::Counter& c_failures_;
  telemetry::Counter& c_retries_;
  telemetry::Counter& c_dlq_;
  telemetry::Counter& c_decode_failures_;
};

/// Expands RunOptions::input into the per-iteration payloads fed to each
/// producer (see RunOptions::input).
std::vector<Value> ProducerIterations(const Value& input);

/// Absolute NowMicros() deadline for a run, or 0 for "no deadline".
/// Defensive at the library boundary (the server additionally rejects bad
/// wire values with 400): NaN/Inf and non-positive values mean "none", and
/// huge values clamp instead of overflowing the int64 microsecond cast (UB).
int64_t DeadlineMicrosFromNow(double deadline_ms);

/// Stable routing hash for kGroupBy: hashes the grouping key field of the
/// tuple (or its full JSON if the field is missing).
uint64_t GroupingHash(const Value& tuple, const std::string& key);

}  // namespace laminar::dataflow
