#include "dataflow/mapping.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "common/clock.hpp"
#include "common/hashing.hpp"

namespace laminar::dataflow {
namespace {

/// Bound on per-attempt backoff sleeps so a misconfigured policy cannot
/// stall a worker thread for seconds per tuple.
constexpr double kMaxBackoffMs = 250.0;
/// Error samples kept per run (the rest are counted, not stored).
constexpr size_t kMaxErrorSamples = 5;

telemetry::Counter& MappingCounter(const char* name,
                                   std::string_view mapping) {
  return telemetry::MetricsRegistry::Global().GetCounter(
      name, "mapping=\"" + std::string(mapping) + "\"");
}

}  // namespace

FaultContext::FaultContext(std::string_view mapping,
                           const RunOptions& options)
    : max_retries_(std::max(options.max_retries, 0)),
      backoff_ms_(std::max(options.retry_backoff_ms, 0.0)),
      c_failures_(
          MappingCounter("laminar_dataflow_tuple_failures_total", mapping)),
      c_retries_(MappingCounter("laminar_dataflow_retries_total", mapping)),
      c_dlq_(MappingCounter("laminar_dataflow_dlq_total", mapping)),
      c_decode_failures_(
          MappingCounter("laminar_dataflow_decode_failures_total", mapping)) {}

bool FaultContext::InvokeWithRetries(const std::function<void()>& attempt,
                                     const std::string& context) {
  try {
    attempt();
    return true;
  } catch (const std::exception& e) {
    return RetryAfterFailure(attempt, context, e.what());
  } catch (...) {
    return RetryAfterFailure(attempt, context, "non-standard exception");
  }
}

bool FaultContext::RetryAfterFailure(const std::function<void()>& attempt,
                                     const std::string& context,
                                     std::string last_error) {
  for (int try_no = 1; try_no <= max_retries_; ++try_no) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    c_retries_.Inc();
    if (backoff_ms_ > 0) {
      double sleep_ms = std::min(
          backoff_ms_ * static_cast<double>(1 << (try_no - 1)), kMaxBackoffMs);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    try {
      attempt();
      return true;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "non-standard exception";
    }
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  dlq_.fetch_add(1, std::memory_order_relaxed);
  c_failures_.Inc();
  c_dlq_.Inc();
  RecordSample(context + ": " + last_error);
  return false;
}

void FaultContext::RecordDecodeFailure(const std::string& error) {
  decode_failures_.fetch_add(1, std::memory_order_relaxed);
  dlq_.fetch_add(1, std::memory_order_relaxed);
  c_decode_failures_.Inc();
  c_dlq_.Inc();
  RecordSample(error);
}

void FaultContext::RecordSample(const std::string& error) {
  std::scoped_lock lock(samples_mu_);
  if (samples_.size() < kMaxErrorSamples) samples_.push_back(error);
}

void FaultContext::Finalize(RunResult& result) const {
  result.failed_tuples = failures();
  result.retries = retries();
  result.dlq_depth = dlq_items();
  {
    std::scoped_lock lock(samples_mu_);
    result.error_samples = samples_;
  }
  if (result.dlq_depth == 0 || !result.status.ok()) return;
  std::string summary = std::to_string(result.dlq_depth) +
                        " tuple(s) quarantined after " +
                        std::to_string(result.retries) + " retries";
  if (!result.error_samples.empty()) {
    summary += "; first error: " + result.error_samples.front();
  }
  result.status = Status::Internal(std::move(summary));
}

std::vector<Value> ProducerIterations(const Value& input) {
  std::vector<Value> iterations;
  if (input.is_int()) {
    int64_t n = input.as_int();
    for (int64_t i = 0; i < n; ++i) iterations.emplace_back(i);
  } else if (input.is_array()) {
    for (const Value& v : input.as_array()) iterations.push_back(v);
  } else {
    iterations.push_back(input);
  }
  return iterations;
}

int64_t DeadlineMicrosFromNow(double deadline_ms) {
  if (!std::isfinite(deadline_ms) || deadline_ms <= 0.0) return 0;
  // ~285 years in ms: far beyond any real deadline, small enough that the
  // *1000 microsecond conversion below cannot overflow int64.
  constexpr double kMaxDeadlineMs = 9.0e12;
  double clamped = std::min(deadline_ms, kMaxDeadlineMs);
  return NowMicros() + static_cast<int64_t>(clamped * 1000.0);
}

uint64_t GroupingHash(const Value& tuple, const std::string& key) {
  const Value* target = &tuple;
  if (!key.empty() && tuple.is_object() && tuple.contains(key)) {
    target = &tuple.at(key);
  }
  return hashing::SplitMix64(hashing::Fnv1a64(target->ToJson()));
}

}  // namespace laminar::dataflow
