#include "dataflow/mapping.hpp"

#include "common/hashing.hpp"

namespace laminar::dataflow {

std::vector<Value> ProducerIterations(const Value& input) {
  std::vector<Value> iterations;
  if (input.is_int()) {
    int64_t n = input.as_int();
    for (int64_t i = 0; i < n; ++i) iterations.emplace_back(i);
  } else if (input.is_array()) {
    for (const Value& v : input.as_array()) iterations.push_back(v);
  } else {
    iterations.push_back(input);
  }
  return iterations;
}

uint64_t GroupingHash(const Value& tuple, const std::string& key) {
  const Value* target = &tuple;
  if (!key.empty() && tuple.is_object() && tuple.contains(key)) {
    target = &tuple.at(key);
  }
  return hashing::SplitMix64(hashing::Fnv1a64(target->ToJson()));
}

}  // namespace laminar::dataflow
