#include "dataflow/dynamic_mapping.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::dataflow {
namespace {

std::atomic<uint64_t> g_run_counter{1};

/// Work-item wire format on the broker queues (JSON, as the Python
/// implementation pickles/serializes items through Redis).
std::string EncodeItem(const std::string& port, const Value& value) {
  Value obj = Value::MakeObject();
  obj["port"] = port;
  obj["value"] = value;
  return obj.ToJson();
}

bool DecodeItem(const std::string& text, std::string& port, Value& value) {
  Result<Value> parsed = json::Parse(text);
  if (!parsed.ok() || !parsed->is_object()) return false;
  port = parsed->GetString("port");
  value = parsed->at("value");
  return true;
}

/// Dead-letter record: the quarantined work item plus why it failed.
std::string EncodeDlqItem(const std::string& item, const std::string& error) {
  Value obj = Value::MakeObject();
  obj["item"] = item;
  obj["error"] = error;
  return obj.ToJson();
}

class SharedOutput {
 public:
  SharedOutput(RunResult& result, const LineSink& sink)
      : result_(result), sink_(sink) {}
  void Log(std::string_view line) {
    std::scoped_lock lock(mu_);
    result_.output_lines.emplace_back(line);
    if (sink_) sink_(result_.output_lines.back());
  }

 private:
  std::mutex mu_;
  RunResult& result_;
  const LineSink& sink_;
};

struct RunState {
  const WorkflowGraph* graph = nullptr;
  int64_t deadline_us = 0;  ///< 0 = no limit
  std::atomic<bool> expired{false};
  broker::Broker* broker = nullptr;
  std::string prefix;        ///< run scope on the shared broker ("wf:N:")
  std::string queue_prefix;  ///< work queues ("wf:N:q:"; autoscaler probe)
  std::string dlq_key;       ///< dead-letter list ("wf:N:dlq")
  std::vector<std::string> queue_keys;  // per PE
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> tuples{0};
  SharedOutput* output = nullptr;
  FaultContext* faults = nullptr;
  /// Shared single instances for stateful PEs (+ the finish pass).
  std::vector<std::unique_ptr<ProcessingElement>> shared_instances;
  std::vector<std::unique_ptr<std::mutex>> pe_mutexes;

  /// Wakes the drain waiter and the autoscaler the moment the run stops,
  /// instead of letting them sleep out their polling ticks.
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  void RequestStop() {
    stop.store(true, std::memory_order_release);
    std::scoped_lock lock(stop_mu);
    stop_cv.notify_all();
  }
};

/// Emits by enqueueing downstream work items on the broker.
class QueueEmitter final : public Emitter {
 public:
  QueueEmitter(RunState& state, size_t pe_index)
      : state_(state), pe_index_(pe_index) {}

  void Emit(std::string_view output_port, Value value) override {
    for (const Edge* edge :
         state_.graph->OutgoingEdges(pe_index_, output_port)) {
      state_.pending.fetch_add(1, std::memory_order_acq_rel);
      state_.broker->RPush(state_.queue_keys[edge->to_pe],
                           EncodeItem(edge->to_port, value));
    }
  }

  void Log(std::string_view line) override { state_.output->Log(line); }

  void set_pe(size_t pe_index) { pe_index_ = pe_index; }

 private:
  RunState& state_;
  size_t pe_index_;
};

/// Processes one tuple on the right instance (shared for stateful PEs,
/// caller-local clone otherwise). A Process throw is retried under the
/// run's policy; once exhausted the raw item is quarantined on the DLQ.
void ProcessItem(RunState& state,
                 std::vector<std::unique_ptr<ProcessingElement>>& local,
                 size_t pe, const std::string& port, const Value& value,
                 const std::string& raw_item) {
  QueueEmitter emitter(state, pe);
  auto attempt = [&] {
    if (state.graph->Node(pe).stateful()) {
      std::scoped_lock lock(*state.pe_mutexes[pe]);
      state.shared_instances[pe]->Process(port, value, emitter);
    } else {
      local[pe]->Process(port, value, emitter);
    }
  };
  const std::string context =
      state.graph->Node(pe).name() + "[" + port + "]";
  if (state.faults->InvokeWithRetries(attempt, context)) {
    state.tuples.fetch_add(1, std::memory_order_relaxed);
  } else {
    state.broker->RPush(state.dlq_key, EncodeDlqItem(raw_item, context));
  }
}

void WorkerLoop(RunState& state) {
  // Per-worker clones for stateless PEs.
  std::vector<std::unique_ptr<ProcessingElement>> local;
  local.reserve(state.graph->NodeCount());
  for (size_t i = 0; i < state.graph->NodeCount(); ++i) {
    local.push_back(state.graph->Node(i).Clone());
    local.back()->Setup(0, 1);
  }
  while (!state.stop.load(std::memory_order_acquire)) {
    if (state.deadline_us != 0 && NowMicros() > state.deadline_us) {
      state.expired.store(true, std::memory_order_release);
      state.RequestStop();
      break;
    }
    auto item = state.broker->BLPop(state.queue_keys,
                                    std::chrono::milliseconds(20));
    if (!item.has_value()) continue;  // timeout; re-check stop flag
    // Map queue key back to PE index.
    size_t pe = state.graph->NodeCount();
    for (size_t i = 0; i < state.queue_keys.size(); ++i) {
      if (state.queue_keys[i] == item->first) {
        pe = i;
        break;
      }
    }
    std::string port;
    Value value;
    if (pe >= state.graph->NodeCount()) {
      // Never dropped silently: quarantine with the reason attached.
      std::string error = "unroutable queue key '" + item->first + "'";
      state.faults->RecordDecodeFailure(error);
      state.broker->RPush(state.dlq_key, EncodeDlqItem(item->second, error));
    } else if (!DecodeItem(item->second, port, value)) {
      std::string error =
          "undecodable work item on '" + item->first + "'";
      state.faults->RecordDecodeFailure(error);
      state.broker->RPush(state.dlq_key, EncodeDlqItem(item->second, error));
    } else {
      ProcessItem(state, local, pe, port, value, item->second);
    }
    if (state.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      state.RequestStop();
    }
  }
}

}  // namespace

DynamicMapping::DynamicMapping()
    : owned_broker_(std::make_unique<broker::Broker>()),
      broker_(owned_broker_.get()) {}

DynamicMapping::DynamicMapping(broker::Broker* shared_broker)
    : broker_(shared_broker) {}

RunResult DynamicMapping::Execute(const WorkflowGraph& graph,
                                  const RunOptions& options,
                                  const LineSink& sink) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter& enactments = registry.GetCounter(
      "laminar_dataflow_enactments_total", "mapping=\"dynamic\"");
  static telemetry::Counter& tuples_total = registry.GetCounter(
      "laminar_dataflow_tuples_total", "mapping=\"dynamic\"");
  static telemetry::Histogram& enact_ms = registry.GetHistogram(
      "laminar_dataflow_enact_ms", "mapping=\"dynamic\"");
  static telemetry::Gauge& workers_gauge =
      registry.GetGauge("laminar_dataflow_peak_workers");
  enactments.Inc();
  telemetry::ScopedSpan enact_span("mapping.dynamic", &enact_ms);

  RunResult result;
  Stopwatch watch;
  result.status = graph.Validate();
  if (!result.status.ok()) return result;

  SharedOutput output(result, sink);
  FaultContext faults("dynamic", options);
  RunState state;
  state.graph = &graph;
  state.broker = broker_;
  state.output = &output;
  state.faults = &faults;
  state.prefix = "wf:" + std::to_string(g_run_counter.fetch_add(1)) + ":";
  state.queue_prefix = state.prefix + "q:";
  state.dlq_key = state.prefix + "dlq";
  // Run-scoped broker cleanup: every exit path — success, partial failure,
  // deadline expiry — deletes this run's queue and DLQ keys, so the
  // engine's long-lived shared broker never accumulates dead lists.
  struct BrokerCleanup {
    broker::Broker* broker;
    const std::string& prefix;
    ~BrokerCleanup() { broker->DelPrefix(prefix); }
  } broker_cleanup{broker_, state.prefix};
  state.deadline_us =
      options.deadline_ms > 0
          ? NowMicros() + static_cast<int64_t>(options.deadline_ms * 1000)
          : 0;
  for (size_t i = 0; i < graph.NodeCount(); ++i) {
    state.queue_keys.push_back(state.queue_prefix + std::to_string(i));
    state.shared_instances.push_back(graph.Node(i).Clone());
    state.shared_instances.back()->Setup(0, 1);
    state.pe_mutexes.push_back(std::make_unique<std::mutex>());
    result.partition[graph.Node(i).name()] = {0, 1};
  }

  // Seed producer iterations as work items.
  std::vector<Value> iterations = ProducerIterations(options.input);
  for (size_t producer : graph.Producers()) {
    for (const Value& payload : iterations) {
      state.pending.fetch_add(1, std::memory_order_acq_rel);
      state.broker->RPush(state.queue_keys[producer],
                          EncodeItem("iteration", payload));
    }
  }
  if (state.pending.load() == 0) {
    // Nothing to do; still run the finish pass below.
    state.RequestStop();
  }

  // Worker pool + autoscaler.
  int max_workers = std::max(options.max_workers, 1);
  int initial = std::clamp(options.initial_workers, 1, max_workers);
  std::vector<std::thread> workers;
  std::mutex workers_mu;
  workers.reserve(static_cast<size_t>(max_workers));
  for (int i = 0; i < initial; ++i) {
    workers.emplace_back([&state] { WorkerLoop(state); });
  }
  int peak = initial;

  std::thread autoscaler;
  if (options.autoscale) {
    autoscaler = std::thread([&] {
      while (!state.stop.load(std::memory_order_acquire)) {
        size_t queued = state.broker->TotalQueued(state.queue_prefix);
        {
          std::scoped_lock lock(workers_mu);
          // Re-check stop under workers_mu: a worker can flip it between
          // the probe and here, and emplacing then would burn a thread
          // spawn per run tail.
          if (!state.stop.load(std::memory_order_acquire) &&
              workers.size() < static_cast<size_t>(max_workers) &&
              queued > workers.size() *
                           static_cast<size_t>(std::max(
                               options.autoscale_queue_per_worker, 1))) {
            workers.emplace_back([&state] { WorkerLoop(state); });
            peak = std::max(peak, static_cast<int>(workers.size()));
          }
        }
        // Tick every 5 ms, but wake immediately on stop.
        std::unique_lock lock(state.stop_mu);
        state.stop_cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
          return state.stop.load(std::memory_order_acquire);
        });
      }
    });
  }

  {
    // Wait for the drain (workers request stop when pending hits zero).
    std::unique_lock lock(state.stop_mu);
    state.stop_cv.wait(
        lock, [&] { return state.stop.load(std::memory_order_acquire); });
  }
  if (autoscaler.joinable()) autoscaler.join();
  for (std::thread& w : workers) w.join();

  // Finish pass: topological, synchronous, on the shared instances, so
  // stateful aggregations flush exactly once. Skipped when the run expired
  // (a killed serverless instance flushes nothing).
  Result<std::vector<size_t>> topo = graph.TopologicalOrder();
  if (state.expired.load()) topo = Status::DeadlineExceeded("expired");
  if (topo.ok()) {
    std::deque<std::pair<size_t, std::string>> local_queue;  // (pe, item)
    struct FinishEmitter final : Emitter {
      RunState& state;
      size_t pe;
      std::deque<std::pair<size_t, std::string>>& queue;
      const WorkflowGraph& graph;
      FinishEmitter(RunState& s, size_t p,
                    std::deque<std::pair<size_t, std::string>>& q,
                    const WorkflowGraph& g)
          : state(s), pe(p), queue(q), graph(g) {}
      void Emit(std::string_view output_port, Value value) override {
        for (const Edge* edge : graph.OutgoingEdges(pe, output_port)) {
          queue.emplace_back(edge->to_pe, EncodeItem(edge->to_port, value));
        }
      }
      void Log(std::string_view line) override { state.output->Log(line); }
    };
    auto drain = [&] {
      while (!local_queue.empty()) {
        auto [pe, text] = std::move(local_queue.front());
        local_queue.pop_front();
        std::string port;
        Value value;
        if (!DecodeItem(text, port, value)) {
          std::string error = "undecodable finish-pass item for '" +
                              graph.Node(pe).name() + "'";
          faults.RecordDecodeFailure(error);
          state.broker->RPush(state.dlq_key, EncodeDlqItem(text, error));
          continue;
        }
        FinishEmitter emitter(state, pe, local_queue, graph);
        const std::string context =
            graph.Node(pe).name() + "[" + port + "]";
        if (faults.InvokeWithRetries(
                [&] {
                  state.shared_instances[pe]->Process(port, value, emitter);
                },
                context)) {
          state.tuples.fetch_add(1, std::memory_order_relaxed);
        } else {
          state.broker->RPush(state.dlq_key, EncodeDlqItem(text, context));
        }
      }
    };
    for (size_t pe : topo.value()) {
      FinishEmitter emitter(state, pe, local_queue, graph);
      faults.InvokeWithRetries(
          [&] { state.shared_instances[pe]->Finish(emitter); },
          graph.Node(pe).name() + "[finish]");
      drain();
    }
  }

  if (options.verbose) {
    output.Log("Dynamic run complete: " + std::to_string(state.tuples.load()) +
               " tuples, peak workers " + std::to_string(peak) + ".");
  }
  result.tuples_processed = state.tuples.load();
  if (state.expired.load()) {
    result.status = Status::DeadlineExceeded(
        "execution exceeded " + std::to_string(options.deadline_ms) + " ms");
  }
  faults.Finalize(result);
  result.peak_workers = peak;
  result.elapsed_ms = watch.ElapsedMillis();
  tuples_total.Inc(result.tuples_processed);
  workers_gauge.Set(result.peak_workers);
  return result;
}

}  // namespace laminar::dataflow
