#include "dataflow/dynamic_mapping.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/clock.hpp"
#include "common/json.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::dataflow {
namespace {

std::atomic<uint64_t> g_run_counter{1};

/// Work-item wire format on the broker queues: `<port>\x1f<payload-json>`.
/// A framed header instead of a JSON object wrap, so a decode parses only
/// the payload — the wrap used to cost more than the broker ops it carried
/// (the Python implementation pays the same shape of tax pickling items
/// through Redis; here the data plane is the hot path we measure). The
/// separator is the ASCII unit separator, which port names never contain
/// and which JSON string payloads always escape. Integer payloads — the
/// overwhelmingly common stream tuple — skip the JSON parser both ways.
constexpr char kFrameSep = '\x1f';

void AppendPayload(std::string& out, const Value& value) {
  if (value.is_int()) {
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value.as_int(0));
    out.append(buf, end);
  } else {
    out += value.ToJson();
  }
}

std::string EncodeItem(std::string_view port, const Value& value) {
  std::string item;
  item.reserve(port.size() + 24);
  item.append(port);
  item.push_back(kFrameSep);
  AppendPayload(item, value);
  return item;
}

bool DecodeItem(const std::string& text, std::string& port, Value& value) {
  const size_t sep = text.find(kFrameSep);
  if (sep == std::string::npos) return false;
  port.assign(text, 0, sep);
  const std::string_view payload(text.data() + sep + 1,
                                 text.size() - sep - 1);
  if (!payload.empty()) {
    int64_t n = 0;
    auto [end, ec] =
        std::from_chars(payload.data(), payload.data() + payload.size(), n);
    if (ec == std::errc() && end == payload.data() + payload.size()) {
      value = Value(n);
      return true;
    }
  }
  Result<Value> parsed = json::Parse(payload);
  if (!parsed.ok()) return false;
  value = std::move(parsed).value();
  return true;
}

/// Dead-letter record: the quarantined work item plus why it failed.
std::string EncodeDlqItem(const std::string& item, const std::string& error) {
  Value obj = Value::MakeObject();
  obj["item"] = item;
  obj["error"] = error;
  return obj.ToJson();
}

class SharedOutput {
 public:
  SharedOutput(RunResult& result, const LineSink& sink)
      : result_(result), sink_(sink) {}
  void Log(std::string_view line) {
    std::scoped_lock lock(mu_);
    result_.output_lines.emplace_back(line);
    if (sink_) sink_(result_.output_lines.back());
  }

 private:
  std::mutex mu_;
  RunResult& result_;
  const LineSink& sink_;
};

struct SendBuffers;

struct RunState {
  const WorkflowGraph* graph = nullptr;
  int64_t deadline_us = 0;  ///< 0 = no limit
  std::atomic<bool> expired{false};
  broker::Broker* broker = nullptr;
  std::string prefix;        ///< run scope on the shared broker ("wf:N:")
  std::string queue_prefix;  ///< work queues ("wf:N:q:"; autoscaler probe)
  std::string dlq_key;       ///< dead-letter list ("wf:N:dlq")
  std::vector<std::string> queue_keys;  // per PE
  /// Queue key -> PE index, so batch routing is one hash lookup instead of
  /// a linear scan per popped item.
  std::unordered_map<std::string, size_t> queue_index;
  /// Outgoing routing precomputed per PE: each output port with its
  /// destinations, the destination's frame prefix ("<to_port>\x1f") already
  /// encoded. An emit walks a couple of entries instead of allocating an
  /// edge vector and scanning the whole edge list per tuple.
  struct Destination {
    size_t to_pe;
    std::string frame_prefix;
  };
  struct PortRoute {
    std::string port;
    std::vector<Destination> dests;
  };
  std::vector<std::vector<PortRoute>> routes;  // indexed by source PE
  std::atomic<int64_t> pending{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> tuples{0};
  SharedOutput* output = nullptr;
  FaultContext* faults = nullptr;
  /// Micro-batching knobs (clamped from RunOptions; 1 = per-tuple).
  size_t send_batch = 1;
  size_t recv_batch = 1;
  int64_t send_max_age_us = 1000;
  telemetry::Counter* batched_tuples = nullptr;
  /// Shared single instances for stateful PEs (+ the finish pass).
  std::vector<std::unique_ptr<ProcessingElement>> shared_instances;
  std::vector<std::unique_ptr<std::mutex>> pe_mutexes;
  /// Send buffers for stateful PEs, one per shared instance, guarded by
  /// the matching pe_mutexes entry (nullptr for stateless PEs). Emissions
  /// are appended and flushed under that mutex, in processing order, so
  /// per-edge FIFO survives batching even for serialized PEs.
  std::vector<std::unique_ptr<SendBuffers>> shared_buffers;

  /// Wakes the drain waiter, the autoscaler, and every worker blocked in a
  /// broker pop the moment the run stops, instead of letting them sleep out
  /// their polling ticks (workers pass &stop as the pop's cancel flag).
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  void RequestStop() {
    stop.store(true, std::memory_order_release);
    broker->Notify();
    std::scoped_lock lock(stop_mu);
    stop_cv.notify_all();
  }
};

/// Per-destination-PE tuple micro-batch buffers. One instance per worker
/// (stateless emissions, no locking) and one per stateful shared instance
/// (guarded by its pe mutex). A buffer flushes as one RPushMulti when it
/// reaches state.send_batch items, when its oldest item exceeds
/// state.send_max_age_us, or before the owning worker blocks on an empty
/// queue — so no tuple can be stranded in a buffer while consumers sleep.
struct SendBuffers {
  explicit SendBuffers(RunState& state)
      : state(state), per_dest(state.graph->NodeCount()) {}

  RunState& state;
  struct DestBuffer {
    std::vector<std::string> items;
    int64_t oldest_us = 0;
  };
  std::vector<DestBuffer> per_dest;
  /// Cheap emptiness probe so other workers can skip locking a stateful
  /// PE's buffers when there is nothing to flush.
  std::atomic<size_t> total{0};

  void Add(size_t dest_pe, std::string&& item) {
    if (state.send_batch <= 1) {  // unbatched: the pre-batching protocol
      state.broker->RPush(state.queue_keys[dest_pe], std::move(item));
      return;
    }
    DestBuffer& buf = per_dest[dest_pe];
    if (buf.items.empty()) buf.oldest_us = NowMicros();
    buf.items.push_back(std::move(item));
    total.fetch_add(1, std::memory_order_relaxed);
    if (buf.items.size() >= state.send_batch) Flush(dest_pe);
  }

  void Flush(size_t dest_pe) {
    DestBuffer& buf = per_dest[dest_pe];
    if (buf.items.empty()) return;
    const size_t n = buf.items.size();
    state.broker->RPushMulti(state.queue_keys[dest_pe], std::move(buf.items));
    total.fetch_sub(n, std::memory_order_relaxed);
    state.batched_tuples->Inc(n);
  }

  void FlushAll() {
    if (total.load(std::memory_order_relaxed) == 0) return;
    for (size_t pe = 0; pe < per_dest.size(); ++pe) Flush(pe);
  }

  void FlushAged(int64_t now_us) {
    if (total.load(std::memory_order_relaxed) == 0) return;
    for (size_t pe = 0; pe < per_dest.size(); ++pe) {
      DestBuffer& buf = per_dest[pe];
      if (!buf.items.empty() && now_us - buf.oldest_us >= state.send_max_age_us)
        Flush(pe);
    }
  }
};

/// Flushes every stateful shared instance's buffers (taking each pe mutex)
/// plus the caller's own; every worker runs this before blocking on an
/// empty queue, so all buffered tuples are visible before anyone sleeps.
void FlushAllBuffers(RunState& state, SendBuffers& worker_buffers) {
  worker_buffers.FlushAll();
  for (size_t pe = 0; pe < state.shared_buffers.size(); ++pe) {
    SendBuffers* shared = state.shared_buffers[pe].get();
    if (shared == nullptr ||
        shared->total.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    std::scoped_lock lock(*state.pe_mutexes[pe]);
    shared->FlushAll();
  }
}

/// Emits by appending downstream work items to the run's micro-batch
/// buffers (which degrade to direct pushes when batching is off).
class QueueEmitter final : public Emitter {
 public:
  QueueEmitter(RunState& state, SendBuffers& buffers, size_t pe_index)
      : state_(state), buffers_(buffers), pe_index_(pe_index) {}

  void Emit(std::string_view output_port, Value value) override {
    for (const RunState::PortRoute& route : state_.routes[pe_index_]) {
      if (route.port != output_port) continue;
      for (const RunState::Destination& dest : route.dests) {
        state_.pending.fetch_add(1, std::memory_order_acq_rel);
        std::string item;
        item.reserve(dest.frame_prefix.size() + 24);
        item += dest.frame_prefix;
        AppendPayload(item, value);
        buffers_.Add(dest.to_pe, std::move(item));
      }
    }
  }

  void Log(std::string_view line) override { state_.output->Log(line); }

 private:
  RunState& state_;
  SendBuffers& buffers_;
  size_t pe_index_;
};

/// Processes one tuple on the right instance (shared for stateful PEs,
/// caller-local clone otherwise). A Process throw is retried under the
/// run's policy; once exhausted the raw item is quarantined on the DLQ.
/// Stateful emissions go through the instance's shared buffers (under its
/// mutex, keeping per-edge FIFO); stateless ones through the worker's own.
/// Cold path of ProcessItem: the first attempt threw. Builds the closure
/// and context string the fast path avoids, runs the remaining retries, and
/// quarantines the item on exhaustion.
void RetryOrQuarantine(RunState& state, SendBuffers& worker_buffers,
                       std::vector<std::unique_ptr<ProcessingElement>>& local,
                       size_t pe, const std::string& port, const Value& value,
                       const std::string& raw_item, std::string first_error) {
  auto attempt = [&] {
    if (state.shared_buffers[pe] != nullptr) {
      std::scoped_lock lock(*state.pe_mutexes[pe]);
      QueueEmitter emitter(state, *state.shared_buffers[pe], pe);
      state.shared_instances[pe]->Process(port, value, emitter);
    } else {
      QueueEmitter emitter(state, worker_buffers, pe);
      local[pe]->Process(port, value, emitter);
    }
  };
  const std::string context = state.graph->Node(pe).name() + "[" + port + "]";
  if (state.faults->RetryAfterFailure(attempt, context,
                                      std::move(first_error))) {
    state.tuples.fetch_add(1, std::memory_order_relaxed);
  } else {
    state.broker->RPush(state.dlq_key, EncodeDlqItem(raw_item, context));
  }
}

void ProcessItem(RunState& state, SendBuffers& worker_buffers,
                 std::vector<std::unique_ptr<ProcessingElement>>& local,
                 size_t pe, const std::string& port, const Value& value,
                 const std::string& raw_item) {
  try {
    // Stateful PEs run serialized on the shared instance, emitting through
    // its shared buffers; stateless ones on the worker's clone and buffers.
    if (SendBuffers* shared = state.shared_buffers[pe].get()) {
      std::scoped_lock lock(*state.pe_mutexes[pe]);
      QueueEmitter emitter(state, *shared, pe);
      state.shared_instances[pe]->Process(port, value, emitter);
    } else {
      QueueEmitter emitter(state, worker_buffers, pe);
      local[pe]->Process(port, value, emitter);
    }
    state.tuples.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    RetryOrQuarantine(state, worker_buffers, local, pe, port, value, raw_item,
                      e.what());
  } catch (...) {
    RetryOrQuarantine(state, worker_buffers, local, pe, port, value, raw_item,
                      "non-standard exception");
  }
}

void WorkerLoop(RunState& state) {
  // Per-worker clones for stateless PEs.
  std::vector<std::unique_ptr<ProcessingElement>> local;
  local.reserve(state.graph->NodeCount());
  for (size_t i = 0; i < state.graph->NodeCount(); ++i) {
    local.push_back(state.graph->Node(i).Clone());
    local.back()->Setup(0, 1);
  }
  SendBuffers buffers(state);
  while (!state.stop.load(std::memory_order_acquire)) {
    if (state.deadline_us != 0 && NowMicros() > state.deadline_us) {
      state.expired.store(true, std::memory_order_release);
      state.RequestStop();
      break;
    }
    // Everything buffered must be on the broker before we can block.
    FlushAllBuffers(state, buffers);
    std::string queue_key;
    std::vector<std::string> items;
    if (state.recv_batch <= 1) {
      auto item = state.broker->BLPop(
          state.queue_keys, std::chrono::milliseconds(20), &state.stop);
      if (!item.has_value()) continue;  // timeout/stop; re-check stop flag
      queue_key = std::move(item->first);
      items.push_back(std::move(item->second));
    } else {
      auto batch =
          state.broker->BLPopUpTo(state.queue_keys, state.recv_batch,
                                  std::chrono::milliseconds(20), &state.stop);
      if (!batch.has_value()) continue;
      queue_key = std::move(batch->first);
      items = std::move(batch->second);
    }
    // Map queue key back to PE index.
    auto route = state.queue_index.find(queue_key);
    const size_t pe = route != state.queue_index.end()
                          ? route->second
                          : state.graph->NodeCount();
    for (std::string& raw_item : items) {
      // A deadline expiry elsewhere kills the run mid-batch, as it kills
      // queued-but-unpopped items (the cleanup deletes both).
      if (state.stop.load(std::memory_order_acquire)) break;
      std::string port;
      Value value;
      if (pe >= state.graph->NodeCount()) {
        // Never dropped silently: quarantine with the reason attached.
        std::string error = "unroutable queue key '" + queue_key + "'";
        state.faults->RecordDecodeFailure(error);
        state.broker->RPush(state.dlq_key, EncodeDlqItem(raw_item, error));
      } else if (!DecodeItem(raw_item, port, value)) {
        std::string error = "undecodable work item on '" + queue_key + "'";
        state.faults->RecordDecodeFailure(error);
        state.broker->RPush(state.dlq_key, EncodeDlqItem(raw_item, error));
      } else {
        ProcessItem(state, buffers, local, pe, port, value, raw_item);
        if (buffers.total.load(std::memory_order_relaxed) != 0) {
          buffers.FlushAged(NowMicros());
        }
      }
      if (state.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        state.RequestStop();
      }
    }
  }
}

}  // namespace

DynamicMapping::DynamicMapping()
    : owned_broker_(std::make_unique<broker::Broker>()),
      broker_(owned_broker_.get()) {}

DynamicMapping::DynamicMapping(broker::Broker* shared_broker)
    : broker_(shared_broker) {}

RunResult DynamicMapping::Execute(const WorkflowGraph& graph,
                                  const RunOptions& options,
                                  const LineSink& sink) {
  auto& registry = telemetry::MetricsRegistry::Global();
  static telemetry::Counter& enactments = registry.GetCounter(
      "laminar_dataflow_enactments_total", "mapping=\"dynamic\"");
  static telemetry::Counter& tuples_total = registry.GetCounter(
      "laminar_dataflow_tuples_total", "mapping=\"dynamic\"");
  static telemetry::Counter& batched_tuples = registry.GetCounter(
      "laminar_dataflow_batched_tuples_total", "mapping=\"dynamic\"");
  static telemetry::Histogram& enact_ms = registry.GetHistogram(
      "laminar_dataflow_enact_ms", "mapping=\"dynamic\"");
  static telemetry::Gauge& workers_gauge =
      registry.GetGauge("laminar_dataflow_peak_workers");
  enactments.Inc();
  telemetry::ScopedSpan enact_span("mapping.dynamic", &enact_ms);

  RunResult result;
  Stopwatch watch;
  result.status = graph.Validate();
  if (!result.status.ok()) return result;

  SharedOutput output(result, sink);
  FaultContext faults("dynamic", options);
  RunState state;
  state.graph = &graph;
  state.broker = broker_;
  state.output = &output;
  state.faults = &faults;
  state.send_batch = static_cast<size_t>(std::max(options.send_batch_size, 1));
  state.recv_batch = static_cast<size_t>(std::max(options.recv_batch_size, 1));
  state.send_max_age_us = static_cast<int64_t>(
      std::max(options.send_batch_max_delay_ms, 0.0) * 1000.0);
  state.batched_tuples = &batched_tuples;
  // Run keys are `<run_scope>wf:N:*` — the empty default keeps the legacy
  // `wf:N:*` keys; the server scopes non-default tenants as `t:<tenant>:`.
  state.prefix = options.run_scope + "wf:" +
                 std::to_string(g_run_counter.fetch_add(1)) + ":";
  state.queue_prefix = state.prefix + "q:";
  state.dlq_key = state.prefix + "dlq";
  // Run-scoped broker cleanup: every exit path — success, partial failure,
  // deadline expiry — deletes this run's queue and DLQ keys, so the
  // engine's long-lived shared broker never accumulates dead lists.
  struct BrokerCleanup {
    broker::Broker* broker;
    const std::string& prefix;
    ~BrokerCleanup() { broker->DelPrefix(prefix); }
  } broker_cleanup{broker_, state.prefix};
  state.deadline_us = DeadlineMicrosFromNow(options.deadline_ms);
  for (size_t i = 0; i < graph.NodeCount(); ++i) {
    state.queue_keys.push_back(state.queue_prefix + std::to_string(i));
    state.queue_index[state.queue_keys.back()] = i;
    state.shared_instances.push_back(graph.Node(i).Clone());
    state.shared_instances.back()->Setup(0, 1);
    state.pe_mutexes.push_back(std::make_unique<std::mutex>());
    state.shared_buffers.push_back(
        graph.Node(i).stateful() ? std::make_unique<SendBuffers>(state)
                                 : nullptr);
    result.partition[graph.Node(i).name()] = {0, 1};
  }
  state.routes.resize(graph.NodeCount());
  for (const Edge& edge : graph.Edges()) {
    std::vector<RunState::PortRoute>& pe_routes = state.routes[edge.from_pe];
    auto route = std::find_if(
        pe_routes.begin(), pe_routes.end(),
        [&](const RunState::PortRoute& r) { return r.port == edge.from_port; });
    if (route == pe_routes.end()) {
      pe_routes.push_back({edge.from_port, {}});
      route = std::prev(pe_routes.end());
    }
    route->dests.push_back({edge.to_pe, edge.to_port + kFrameSep});
  }

  // Seed producer iterations as work items — one batched push per producer
  // queue when batching is on (workers have not started; nothing to wake).
  std::vector<Value> iterations = ProducerIterations(options.input);
  for (size_t producer : graph.Producers()) {
    if (state.send_batch > 1) {
      std::vector<std::string> seed_items;
      seed_items.reserve(iterations.size());
      for (const Value& payload : iterations) {
        seed_items.push_back(EncodeItem("iteration", payload));
      }
      state.pending.fetch_add(static_cast<int64_t>(seed_items.size()),
                              std::memory_order_acq_rel);
      state.broker->RPushMulti(state.queue_keys[producer],
                               std::move(seed_items));
    } else {
      for (const Value& payload : iterations) {
        state.pending.fetch_add(1, std::memory_order_acq_rel);
        state.broker->RPush(state.queue_keys[producer],
                            EncodeItem("iteration", payload));
      }
    }
  }
  if (state.pending.load() == 0) {
    // Nothing to do; still run the finish pass below.
    state.RequestStop();
  }

  // Worker pool + autoscaler.
  int max_workers = std::max(options.max_workers, 1);
  int initial = std::clamp(options.initial_workers, 1, max_workers);
  std::vector<std::thread> workers;
  std::mutex workers_mu;
  workers.reserve(static_cast<size_t>(max_workers));
  for (int i = 0; i < initial; ++i) {
    workers.emplace_back([&state] { WorkerLoop(state); });
  }
  int peak = initial;

  std::thread autoscaler;
  if (options.autoscale) {
    autoscaler = std::thread([&] {
      while (!state.stop.load(std::memory_order_acquire)) {
        size_t queued = state.broker->TotalQueued(state.queue_prefix);
        {
          std::scoped_lock lock(workers_mu);
          // Re-check stop under workers_mu: a worker can flip it between
          // the probe and here, and emplacing then would burn a thread
          // spawn per run tail.
          if (!state.stop.load(std::memory_order_acquire) &&
              workers.size() < static_cast<size_t>(max_workers) &&
              queued > workers.size() *
                           static_cast<size_t>(std::max(
                               options.autoscale_queue_per_worker, 1))) {
            workers.emplace_back([&state] { WorkerLoop(state); });
            peak = std::max(peak, static_cast<int>(workers.size()));
          }
        }
        // Tick every 5 ms, but wake immediately on stop.
        std::unique_lock lock(state.stop_mu);
        state.stop_cv.wait_for(lock, std::chrono::milliseconds(5), [&] {
          return state.stop.load(std::memory_order_acquire);
        });
      }
    });
  }

  {
    // Wait for the drain (workers request stop when pending hits zero).
    std::unique_lock lock(state.stop_mu);
    state.stop_cv.wait(
        lock, [&] { return state.stop.load(std::memory_order_acquire); });
  }
  if (autoscaler.joinable()) autoscaler.join();
  for (std::thread& w : workers) w.join();

  // Finish pass: topological, synchronous, on the shared instances, so
  // stateful aggregations flush exactly once. Skipped when the run expired
  // (a killed serverless instance flushes nothing).
  Result<std::vector<size_t>> topo = graph.TopologicalOrder();
  if (state.expired.load()) topo = Status::DeadlineExceeded("expired");
  if (topo.ok()) {
    std::deque<std::pair<size_t, std::string>> local_queue;  // (pe, item)
    struct FinishEmitter final : Emitter {
      RunState& state;
      size_t pe;
      std::deque<std::pair<size_t, std::string>>& queue;
      const WorkflowGraph& graph;
      FinishEmitter(RunState& s, size_t p,
                    std::deque<std::pair<size_t, std::string>>& q,
                    const WorkflowGraph& g)
          : state(s), pe(p), queue(q), graph(g) {}
      void Emit(std::string_view output_port, Value value) override {
        for (const Edge* edge : graph.OutgoingEdges(pe, output_port)) {
          queue.emplace_back(edge->to_pe, EncodeItem(edge->to_port, value));
        }
      }
      void Log(std::string_view line) override { state.output->Log(line); }
    };
    auto drain = [&] {
      while (!local_queue.empty()) {
        auto [pe, text] = std::move(local_queue.front());
        local_queue.pop_front();
        std::string port;
        Value value;
        if (!DecodeItem(text, port, value)) {
          std::string error = "undecodable finish-pass item for '" +
                              graph.Node(pe).name() + "'";
          faults.RecordDecodeFailure(error);
          state.broker->RPush(state.dlq_key, EncodeDlqItem(text, error));
          continue;
        }
        FinishEmitter emitter(state, pe, local_queue, graph);
        const std::string context =
            graph.Node(pe).name() + "[" + port + "]";
        if (faults.InvokeWithRetries(
                [&] {
                  state.shared_instances[pe]->Process(port, value, emitter);
                },
                context)) {
          state.tuples.fetch_add(1, std::memory_order_relaxed);
        } else {
          state.broker->RPush(state.dlq_key, EncodeDlqItem(text, context));
        }
      }
    };
    for (size_t pe : topo.value()) {
      FinishEmitter emitter(state, pe, local_queue, graph);
      faults.InvokeWithRetries(
          [&] { state.shared_instances[pe]->Finish(emitter); },
          graph.Node(pe).name() + "[finish]");
      drain();
    }
  }

  if (options.verbose) {
    output.Log("Dynamic run complete: " + std::to_string(state.tuples.load()) +
               " tuples, peak workers " + std::to_string(peak) + ".");
  }
  result.tuples_processed = state.tuples.load();
  if (state.expired.load()) {
    result.status = Status::DeadlineExceeded(
        "execution exceeded " + std::to_string(options.deadline_ms) + " ms");
  }
  faults.Finalize(result);
  result.peak_workers = peak;
  result.elapsed_ms = watch.ElapsedMillis();
  tuples_total.Inc(result.tuples_processed);
  workers_gauge.Set(result.peak_workers);
  return result;
}

}  // namespace laminar::dataflow
