// Reproduces the §IV-D registry evaluation (Table II / Fig. 6): the schema
// migration from Laminar 1.0 (code in bounded String fields, no secondary
// indexes, denormalized) to 2.0 (CLOBs, normalized link table, name/user
// indexes).
//
// Measured: (a) how many real corpus PEs even FIT in the 1.0 schema,
// (b) name-lookup latency with and without the index as the registry grows,
// (c) link-table queries for workflow<->PE membership.
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "registry/repository.hpp"

using namespace laminar;
using namespace laminar::registry;

int main() {
  std::printf("== §IV-D: registry schema — Laminar 1.0 vs 2.0 ==\n\n");
  dataset::DatasetConfig corpus_config = bench::DefaultCorpusConfig();
  corpus_config.variants_per_family = 40;  // ~1200 PEs
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(corpus_config);
  std::printf("corpus: %zu PEs\n\n", ds.size());
  bench::BenchReport report("registry");
  report.Set("corpus_size", static_cast<int64_t>(ds.size()));
  size_t capacity_v1 = 0, capacity_v2 = 0;

  // (a) Capacity: how many PEs fit in each schema?
  {
    Database legacy;
    (void)CreateLegacySchema(legacy);
    Table* v1 = legacy.GetTable("v1_processing_element");
    size_t fit = 0;
    for (const dataset::PeExample& ex : ds.examples()) {
      Row row = Value::MakeObject();
      row["peName"] = ex.name;
      row["peCode"] = ex.pe_code;
      if (v1->Insert(std::move(row)).ok()) ++fit;
    }
    Database v2db;
    (void)CreateLaminarSchema(v2db);
    Repository repo(v2db);
    size_t fit2 = 0;
    for (const dataset::PeExample& ex : ds.examples()) {
      PeRecord pe;
      pe.name = ex.name;
      pe.code = ex.pe_code;
      pe.description = ex.description;
      if (repo.CreatePe(pe).ok()) ++fit2;
    }
    capacity_v1 = fit;
    capacity_v2 = fit2;
    std::printf("capacity (PE code storage):\n");
    std::printf("  1.0 String field (VARCHAR 255): %zu/%zu PEs stored "
                "(%.0f%% rejected as too large)\n",
                fit, ds.size(),
                100.0 * static_cast<double>(ds.size() - fit) /
                    static_cast<double>(ds.size()));
    std::printf("  2.0 CLOB column:                %zu/%zu PEs stored\n\n",
                fit2, ds.size());
  }

  // (b) Lookup latency: indexed vs scan, growing registry.
  std::printf("name lookup latency (1000 lookups, microseconds total):\n");
  std::printf("  %-10s %-18s %-18s %-10s\n", "rows", "1.0 scan (us)",
              "2.0 index (us)", "speedup");
  for (size_t rows : {200u, 600u, 1200u}) {
    // 1.0-style: no index on peName -> every lookup scans.
    TableSchema unindexed;
    unindexed.name = "scan_table";
    unindexed.columns = {{"peName", ColumnType::kString, false},
                         {"peCode", ColumnType::kClob, true}};
    Table scan_table(unindexed);
    TableSchema indexed = unindexed;
    indexed.name = "indexed_table";
    indexed.indexed_columns = {"peName"};
    Table index_table(indexed);
    for (size_t i = 0; i < rows && i < ds.size(); ++i) {
      Row row = Value::MakeObject();
      row["peName"] = ds.example(i).name;
      row["peCode"] = ds.example(i).pe_code;
      (void)scan_table.Insert(row);
      (void)index_table.Insert(std::move(row));
    }
    constexpr int kLookups = 1000;
    Stopwatch scan_watch;
    for (int i = 0; i < kLookups; ++i) {
      size_t pick = static_cast<size_t>(i) * 7 % std::min(rows, ds.size());
      (void)scan_table.FindBy("peName", Value(ds.example(pick).name));
    }
    double scan_us = static_cast<double>(scan_watch.ElapsedMicros());
    Stopwatch index_watch;
    for (int i = 0; i < kLookups; ++i) {
      size_t pick = static_cast<size_t>(i) * 7 % std::min(rows, ds.size());
      (void)index_table.FindBy("peName", Value(ds.example(pick).name));
    }
    double index_us = static_cast<double>(index_watch.ElapsedMicros());
    std::printf("  %-10zu %-18.0f %-18.0f %-9.1fx\n", rows, scan_us, index_us,
                index_us > 0 ? scan_us / index_us : 0.0);
    Value& row = report.AddRow();
    row["rows"] = static_cast<int64_t>(rows);
    row["scan_us"] = scan_us;
    row["index_us"] = index_us;
  }

  // (c) Normalized link table: PEs-of-workflow via indexed workflowId.
  {
    Database db;
    (void)CreateLaminarSchema(db);
    Repository repo(db);
    int64_t uid = repo.CreateUser("bench", "pw").value();
    std::vector<int64_t> pe_ids;
    for (size_t i = 0; i < 600 && i < ds.size(); ++i) {
      PeRecord pe;
      pe.name = ds.example(i).name;
      pe.code = ds.example(i).pe_code;
      pe_ids.push_back(repo.CreatePe(pe).value());
    }
    std::vector<int64_t> wf_ids;
    for (int w = 0; w < 100; ++w) {
      WorkflowRecord wf;
      wf.user_id = uid;
      wf.name = "wf_" + std::to_string(w);
      wf.code = "graph = WorkflowGraph()";
      int64_t wid = repo.CreateWorkflow(wf).value();
      wf_ids.push_back(wid);
      for (int p = 0; p < 6; ++p) {
        (void)repo.LinkPe(wid, pe_ids[static_cast<size_t>((w * 6 + p)) %
                                      pe_ids.size()]);
      }
    }
    Stopwatch watch;
    size_t total = 0;
    for (int round = 0; round < 100; ++round) {
      for (int64_t wid : wf_ids) total += repo.PesOfWorkflow(wid).size();
    }
    double link_ms = watch.ElapsedMillis();
    std::printf("\nlink-table membership queries: 10k queries over 100 "
                "workflows x 6 PEs in %.1f ms (%zu rows touched)\n", link_ms,
                total);
    report.Set("link_queries_ms", link_ms);
  }
  std::printf("\nexpected shape: the 1.0 schema rejects most real PEs "
              "outright and its lookups degrade linearly with registry "
              "size; the 2.0 schema stores everything with ~constant-time "
              "indexed lookups.\n");
  report.Set("v1_schema_capacity", static_cast<int64_t>(capacity_v1));
  report.Set("v2_schema_capacity", static_cast<int64_t>(capacity_v2));
  report.Write();
  return 0;
}
