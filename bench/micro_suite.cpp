// google-benchmark micro-suite: throughput of the hot paths every other
// bench and the server depend on — lexing, parsing, SPT build +
// featurization, embedding encoders, JSON, broker ops, and the SPT index.
#include <benchmark/benchmark.h>

#include "broker/broker.hpp"
#include "common/json.hpp"
#include "dataset/generator.hpp"
#include "embed/reacc_sim.hpp"
#include "embed/unixcoder_sim.hpp"
#include "pycode/lexer.hpp"
#include "pycode/parser.hpp"
#include "spt/recommend.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar {
namespace {

const std::string& SamplePeCode() {
  static const std::string kCode = [] {
    dataset::DatasetConfig config;
    config.families = 1;
    config.variants_per_family = 1;
    return dataset::CodeSearchNetPeDataset::Generate(config)
        .example(0)
        .pe_code;
  }();
  return kCode;
}

void BM_Lex(benchmark::State& state) {
  const std::string& code = SamplePeCode();
  for (auto _ : state) {
    auto tokens = pycode::Lex(code);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(code.size()));
}
BENCHMARK(BM_Lex);

void BM_Parse(benchmark::State& state) {
  const std::string& code = SamplePeCode();
  for (auto _ : state) {
    auto tree = pycode::Parse(code);
    benchmark::DoNotOptimize(tree);
  }
}
BENCHMARK(BM_Parse);

void BM_SptBuildAndFeaturize(benchmark::State& state) {
  const std::string& code = SamplePeCode();
  for (auto _ : state) {
    auto spt = spt::SptFromSource(code);
    auto features = spt::ExtractFeatures(*spt.value());
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_SptBuildAndFeaturize);

void BM_UnixcoderEncode(benchmark::State& state) {
  embed::UnixcoderSim model;
  std::string text =
      "a processing element that detects anomalies in streaming sensor "
      "temperature readings using a rolling z score window";
  for (auto _ : state) {
    auto v = model.EncodeText(text);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_UnixcoderEncode);

void BM_ReaccEncode(benchmark::State& state) {
  embed::ReaccSim model;
  const std::string& code = SamplePeCode();
  for (auto _ : state) {
    auto v = model.EncodeCode(code);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ReaccEncode);

void BM_JsonRoundTrip(benchmark::State& state) {
  Value doc = Value::MakeObject();
  for (int i = 0; i < 32; ++i) {
    Value pe = Value::MakeObject();
    pe["name"] = "PE" + std::to_string(i);
    pe["score"] = 0.5 + i;
    pe["tags"].push_back("stream");
    pe["tags"].push_back("serverless");
    doc["pes"].push_back(std::move(pe));
  }
  std::string text = doc.ToJson();
  for (auto _ : state) {
    auto parsed = json::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_JsonRoundTrip);

void BM_BrokerPushPop(benchmark::State& state) {
  broker::Broker broker;
  std::string payload(128, 'x');
  for (auto _ : state) {
    broker.RPush("q", payload);
    auto v = broker.LPop("q");
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BrokerPushPop);

void BM_SptIndexTopK(benchmark::State& state) {
  static spt::AromaEngine* engine = [] {
    auto* e = new spt::AromaEngine();
    dataset::DatasetConfig config;
    config.variants_per_family = static_cast<size_t>(8);
    auto ds = dataset::CodeSearchNetPeDataset::Generate(config);
    for (const auto& ex : ds.examples()) {
      (void)e->AddSnippet(ex.id, ex.pe_code);
    }
    return e;
  }();
  const std::string& query = SamplePeCode();
  for (auto _ : state) {
    auto hits = engine->Search(query, 5, spt::Metric::kOverlap);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SptIndexTopK);

// The budget for instrumenting hot paths: one counter increment must stay
// under 100ns even with every core incrementing the same counter (the
// sharded design keeps the contended case close to the single-thread case).
void BM_TelemetryCounterInc(benchmark::State& state) {
  static telemetry::Counter counter;
  for (auto _ : state) {
    counter.Inc();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(counter.Value());
  }
}
BENCHMARK(BM_TelemetryCounterInc)->ThreadRange(1, 8);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  static telemetry::Histogram histogram;
  double v = 0.0;
  for (auto _ : state) {
    histogram.Observe(v);
    v += 0.125;
    if (v > 5000.0) v = 0.0;
  }
}
BENCHMARK(BM_TelemetryHistogramObserve)->ThreadRange(1, 4);

void BM_TelemetryScopedSpan(benchmark::State& state) {
  static telemetry::Histogram histogram;
  static telemetry::TraceBuffer buffer(256);
  for (auto _ : state) {
    telemetry::ScopedSpan span("bench.span", &histogram, &buffer);
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_TelemetryScopedSpan);

void BM_TelemetryRegistryLookup(benchmark::State& state) {
  auto& reg = telemetry::MetricsRegistry::Global();
  for (auto _ : state) {
    telemetry::Counter& c =
        reg.GetCounter("laminar_bench_lookup_total", "op=\"bench\"");
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_TelemetryRegistryLookup);

void BM_DatasetGenerate(benchmark::State& state) {
  for (auto _ : state) {
    dataset::DatasetConfig config;
    config.families = 8;
    config.variants_per_family = 4;
    auto ds = dataset::CodeSearchNetPeDataset::Generate(config);
    benchmark::DoNotOptimize(ds);
  }
}
BENCHMARK(BM_DatasetGenerate);

}  // namespace
}  // namespace laminar

BENCHMARK_MAIN();
