// The paper's future work ("LSH for structural code", citing Senatus):
// MinHash-LSH retrieval over SPT features vs the exact featurization index,
// at growing corpus sizes. Reported: query latency, candidate-set size, and
// recall of the exact index's top-5 results.
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "spt/lsh_index.hpp"

using namespace laminar;

int main() {
  std::printf("== future work: MinHash-LSH structural index (Senatus-style) "
              "==\n\n");
  std::printf("%-10s %-16s %-16s %-14s %-12s\n", "corpus", "exact ms/query",
              "lsh ms/query", "candidates", "recall@5");

  bench::BenchReport report("lsh");
  for (size_t variants : {10u, 40u, 120u}) {
    dataset::DatasetConfig config;
    config.families = 0;
    config.variants_per_family = variants;
    config.seed = 0xabc123;
    dataset::CodeSearchNetPeDataset ds =
        dataset::CodeSearchNetPeDataset::Generate(config);

    spt::SptIndex exact;
    spt::LshIndex lsh;
    std::vector<spt::FeatureBag> queries;
    for (const dataset::PeExample& ex : ds.examples()) {
      Result<spt::SptNodePtr> spt_tree = spt::SptFromSource(ex.pe_code);
      if (!spt_tree.ok()) continue;
      spt::FeatureBag bag = spt::ExtractFeatures(*spt_tree.value());
      exact.Add(ex.id, bag);
      lsh.Add(ex.id, std::move(bag));
    }
    // Query with a sample of 50%-dropped snippets.
    size_t stride = std::max<size_t>(ds.size() / 100, 1);
    for (size_t i = 0; i < ds.size(); i += stride) {
      std::string partial = dataset::DropCode(ds.example(i).pe_code, 0.5);
      Result<spt::SptNodePtr> spt_tree = spt::SptFromSource(partial);
      if (!spt_tree.ok()) continue;
      queries.push_back(spt::ExtractFeatures(*spt_tree.value()));
    }

    Stopwatch exact_watch;
    std::vector<std::vector<int64_t>> exact_tops;
    for (const spt::FeatureBag& q : queries) {
      std::vector<int64_t> ids;
      for (const auto& hit : exact.TopK(q, 5, spt::Metric::kOverlap)) {
        ids.push_back(hit.doc_id);
      }
      exact_tops.push_back(std::move(ids));
    }
    double exact_ms =
        exact_watch.ElapsedMillis() / static_cast<double>(queries.size());

    Stopwatch lsh_watch;
    size_t candidates_total = 0;
    size_t recalled = 0, expected = 0;
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      candidates_total += lsh.Candidates(queries[qi]).size();
      auto hits = lsh.TopK(queries[qi], 5, spt::Metric::kOverlap);
      std::unordered_set<int64_t> got;
      for (const auto& hit : hits) got.insert(hit.doc_id);
      for (int64_t id : exact_tops[qi]) {
        ++expected;
        if (got.contains(id)) ++recalled;
      }
    }
    double lsh_ms =
        lsh_watch.ElapsedMillis() / static_cast<double>(queries.size());

    double avg_candidates = static_cast<double>(candidates_total) /
                            static_cast<double>(queries.size());
    double recall = expected > 0 ? static_cast<double>(recalled) /
                                       static_cast<double>(expected)
                                 : 0.0;
    std::printf("%-10zu %-16.3f %-16.3f %-14.1f %-12.3f\n", ds.size(),
                exact_ms, lsh_ms, avg_candidates, recall);
    Value& row = report.AddRow();
    row["corpus"] = static_cast<int64_t>(ds.size());
    row["exact_ms_per_query"] = exact_ms;
    row["lsh_ms_per_query"] = lsh_ms;
    row["avg_candidates"] = avg_candidates;
    row["recall_at_5"] = recall;
  }
  std::printf(
      "\nexpected shape: the exact index's cost grows with corpus size "
      "(every shared-feature posting is scored); LSH scores only the "
      "candidate set, trading a small recall loss for sub-linear growth — "
      "the Senatus argument for scaling Aroma to large registries.\n");
  report.Write();
  return 0;
}
