// Shared helpers for the figure-reproduction benches: corpus construction
// over the synthetic CodeSearchNet-PE dataset and PR-table printing in the
// layout of the paper's Figs. 11-13.
#pragma once

#include <algorithm>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dataset/generator.hpp"
#include "search/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::bench {

/// The corpus every search bench shares: the paper used ~450k CodeSearchNet
/// functions; we use a few hundred synthetic PEs with the same structure
/// (grouped, renamed variants), which is enough to trace the curves while
/// keeping every bench binary under a few seconds.
inline dataset::DatasetConfig DefaultCorpusConfig() {
  dataset::DatasetConfig config;
  config.families = 0;  // all 30 families
  config.variants_per_family = 12;
  config.seed = 0x5eed0001;
  // CodeSearchNet's defining property is that every function is *paired
  // with* its documentation (Husain et al. 2019), so the evaluation corpus
  // carries a docstring on every PE.
  config.docstring_probability = 1.0;
  return config;
}

/// Relevance ground truth: every member of the query's semantic group
/// (including the query itself, which stays in the index — the paper used
/// each registered PE as a query against the full registry).
inline std::vector<std::unordered_set<int64_t>> GroupRelevance(
    const dataset::CodeSearchNetPeDataset& ds) {
  std::vector<std::unordered_set<int64_t>> relevant;
  relevant.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    const std::vector<int64_t>& members = ds.GroupMembers(ex.group);
    relevant.emplace_back(members.begin(), members.end());
  }
  return relevant;
}

inline void PrintPrCurve(const char* title,
                         const std::vector<search::PrPoint>& curve) {
  std::printf("%s\n", title);
  std::printf("  %-4s %-10s %-10s %-10s\n", "k", "precision", "recall", "f1");
  for (const search::PrPoint& p : curve) {
    std::printf("  %-4zu %-10.4f %-10.4f %-10.4f\n", p.k, p.precision,
                p.recall, p.f1);
  }
  search::PrPoint best = search::BestF1(curve);
  std::printf("  best F1 = %.4f at k = %zu\n\n", best.f1, best.k);
}

/// Prints one summary line (count/mean/p50/p95/p99, milliseconds) for a
/// histogram in the global telemetry registry. Silent when the series was
/// never recorded or has no samples, so benches can request histograms for
/// code paths they may not have exercised.
inline void PrintHistogramLine(const char* name, const char* labels = "") {
  const telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().FindHistogram(name, labels);
  if (h == nullptr) return;
  telemetry::Histogram::Snapshot s = h->snapshot();
  if (s.count == 0) return;
  std::string series = name;
  if (labels[0] != '\0') {
    series += '{';
    series += labels;
    series += '}';
  }
  std::printf("  %-44s n=%-7llu mean=%-9.3f p50=%-9.3f p95=%-9.3f p99=%.3f\n",
              series.c_str(), static_cast<unsigned long long>(s.count),
              s.Mean(), s.Percentile(0.50), s.Percentile(0.95),
              s.Percentile(0.99));
}

/// Titled block of PrintHistogramLine calls — the standard way a bench
/// reports telemetry-sourced latency percentiles after its main table.
inline void PrintHistogramSummary(
    const char* title,
    std::initializer_list<std::pair<const char*, const char*>> series) {
  std::printf("%s (ms)\n", title);
  for (const auto& [name, labels] : series) PrintHistogramLine(name, labels);
  std::printf("\n");
}

}  // namespace laminar::bench
