// Shared helpers for the figure-reproduction benches: corpus construction
// over the synthetic CodeSearchNet-PE dataset and PR-table printing in the
// layout of the paper's Figs. 11-13.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/value.hpp"
#include "dataset/generator.hpp"
#include "search/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace laminar::bench {

/// The corpus every search bench shares: the paper used ~450k CodeSearchNet
/// functions; we use a few hundred synthetic PEs with the same structure
/// (grouped, renamed variants), which is enough to trace the curves while
/// keeping every bench binary under a few seconds.
inline dataset::DatasetConfig DefaultCorpusConfig() {
  dataset::DatasetConfig config;
  config.families = 0;  // all 30 families
  config.variants_per_family = 12;
  config.seed = 0x5eed0001;
  // CodeSearchNet's defining property is that every function is *paired
  // with* its documentation (Husain et al. 2019), so the evaluation corpus
  // carries a docstring on every PE.
  config.docstring_probability = 1.0;
  return config;
}

/// Relevance ground truth: every member of the query's semantic group
/// (including the query itself, which stays in the index — the paper used
/// each registered PE as a query against the full registry).
inline std::vector<std::unordered_set<int64_t>> GroupRelevance(
    const dataset::CodeSearchNetPeDataset& ds) {
  std::vector<std::unordered_set<int64_t>> relevant;
  relevant.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    const std::vector<int64_t>& members = ds.GroupMembers(ex.group);
    relevant.emplace_back(members.begin(), members.end());
  }
  return relevant;
}

inline void PrintPrCurve(const char* title,
                         const std::vector<search::PrPoint>& curve) {
  std::printf("%s\n", title);
  std::printf("  %-4s %-10s %-10s %-10s\n", "k", "precision", "recall", "f1");
  for (const search::PrPoint& p : curve) {
    std::printf("  %-4zu %-10.4f %-10.4f %-10.4f\n", p.k, p.precision,
                p.recall, p.f1);
  }
  search::PrPoint best = search::BestF1(curve);
  std::printf("  best F1 = %.4f at k = %zu\n\n", best.f1, best.k);
}

/// Prints one summary line (count/mean/p50/p95/p99, milliseconds) for a
/// histogram in the global telemetry registry. Silent when the series was
/// never recorded or has no samples, so benches can request histograms for
/// code paths they may not have exercised.
inline void PrintHistogramLine(const char* name, const char* labels = "") {
  const telemetry::Histogram* h =
      telemetry::MetricsRegistry::Global().FindHistogram(name, labels);
  if (h == nullptr) return;
  telemetry::Histogram::Snapshot s = h->snapshot();
  if (s.count == 0) return;
  std::string series = name;
  if (labels[0] != '\0') {
    series += '{';
    series += labels;
    series += '}';
  }
  std::printf("  %-44s n=%-7llu mean=%-9.3f p50=%-9.3f p95=%-9.3f p99=%.3f\n",
              series.c_str(), static_cast<unsigned long long>(s.count),
              s.Mean(), s.Percentile(0.50), s.Percentile(0.95),
              s.Percentile(0.99));
}

/// Titled block of PrintHistogramLine calls — the standard way a bench
/// reports telemetry-sourced latency percentiles after its main table.
inline void PrintHistogramSummary(
    const char* title,
    std::initializer_list<std::pair<const char*, const char*>> series) {
  std::printf("%s (ms)\n", title);
  for (const auto& [name, labels] : series) PrintHistogramLine(name, labels);
  std::printf("\n");
}

/// Machine-readable companion to the human tables: every bench fills one
/// BenchReport and writes `BENCH_<name>.json` into the working directory,
/// so successive runs form a perf trajectory that scripts can diff. The
/// shape is deliberately simple:
///   { "bench": ..., "wall_ms": ...,        // whole-binary wall time
///     "metrics": { flat scalars/strings }, // headline numbers
///     "rows": [ {...}, ... ],              // one object per table row
///     "histograms": { series -> {n, mean_ms, p50_ms, p95_ms, p99_ms} } }
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)),
        metrics_(Value::MakeObject()),
        rows_(Value::MakeArray()),
        histograms_(Value::MakeObject()) {}

  void Set(const std::string& key, double value) { metrics_[key] = value; }
  void Set(const std::string& key, int64_t value) { metrics_[key] = value; }
  void Set(const std::string& key, const std::string& value) {
    metrics_[key] = value;
  }

  /// Appends one row object (e.g. a printed table line) and returns it for
  /// the caller to fill: report.AddRow()["mapping"] = "dynamic"; ...
  Value& AddRow() {
    rows_.push_back(Value::MakeObject());
    return rows_.mutable_array().back();
  }

  /// Records a telemetry histogram's count/mean/p50/p95/p99 (milliseconds)
  /// under "histograms"; silently skipped when the series has no samples,
  /// mirroring PrintHistogramLine.
  void AddHistogram(const char* name, const char* labels = "") {
    const telemetry::Histogram* h =
        telemetry::MetricsRegistry::Global().FindHistogram(name, labels);
    if (h == nullptr) return;
    telemetry::Histogram::Snapshot s = h->snapshot();
    if (s.count == 0) return;
    std::string series = name;
    if (labels[0] != '\0') {
      series += '{';
      series += labels;
      series += '}';
    }
    Value entry = Value::MakeObject();
    entry["n"] = static_cast<int64_t>(s.count);
    entry["mean_ms"] = s.Mean();
    entry["p50_ms"] = s.Percentile(0.50);
    entry["p95_ms"] = s.Percentile(0.95);
    entry["p99_ms"] = s.Percentile(0.99);
    histograms_[series] = std::move(entry);
  }

  /// Writes BENCH_<name>.json (returns false and warns on I/O failure —
  /// benches keep their exit status for correctness, not reporting).
  bool Write() const {
    Value doc = Value::MakeObject();
    doc["bench"] = name_;
    doc["wall_ms"] = watch_.ElapsedMillis();
    doc["metrics"] = metrics_;
    doc["rows"] = rows_;
    doc["histograms"] = histograms_;
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
      return false;
    }
    out << doc.ToJsonPretty() << "\n";
    std::printf("machine-readable report: %s\n", path.c_str());
    return static_cast<bool>(out);
  }

 private:
  std::string name_;
  Stopwatch watch_;
  Value metrics_;
  Value rows_;
  Value histograms_;
};

/// Records a PR curve in a report: one row per k (tagged with `slug`) plus
/// a `<slug>_best_f1` headline metric — the JSON twin of PrintPrCurve.
inline void ReportPrCurve(BenchReport& report, const std::string& slug,
                          const std::vector<search::PrPoint>& curve) {
  for (const search::PrPoint& p : curve) {
    Value& row = report.AddRow();
    row["curve"] = slug;
    row["k"] = static_cast<int64_t>(p.k);
    row["precision"] = p.precision;
    row["recall"] = p.recall;
    row["f1"] = p.f1;
  }
  report.Set(slug + "_best_f1", search::BestF1(curve).f1);
}

}  // namespace laminar::bench
