// bench_ingest — before/after measurement of the registration (ingest) path
// rebuild (ISSUE 5): the retained pre-rebuild path (CodeT5 summary, UniXcoder
// text encode, SPT featurization, row insert and index add ALL inside one
// exclusive registry lock, exactly as the old RegisterPeLocked ran) versus
// the two-phase path (PreparePe off-lock on the request thread, a short
// exclusive CommitPe), plus a 90/10 read/write mix in the shape of the
// server's shared-lock routing and the serial-vs-ParallelFor bulk rebuild.
//
// Usage:
//   bench_ingest [--pes N] [--writers N] [--mixed-ops N] [--bulk N]
//                [--pool-threads N] [--smoke]
// --smoke shrinks everything to a sub-second corpus and asserts only
// correctness — two-phase commits must be search-for-search identical to
// the in-lock path, and both bulk rebuilds must reproduce the incremental
// index (exit 1 on divergence) — never throughput, so the tier-1 loop can
// compile- and run-check this binary without perf flakes.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "embed/codet5_sim.hpp"
#include "embed/embedding.hpp"
#include "registry/repository.hpp"
#include "registry/schema.hpp"
#include "search/search_service.hpp"
#include "spt/recommend.hpp"

namespace laminar::bench {
namespace {

struct Args {
  size_t pes = 192;        ///< registrations per single-thread run
  size_t writers = 8;      ///< concurrent writer threads
  size_t per_writer = 32;  ///< registrations per writer thread
  size_t mixed_ops = 1200; ///< total ops in the 90/10 read/write mix
  size_t bulk = 512;       ///< corpus size for the bulk-rebuild comparison
  size_t pool_threads = 8; ///< ingest pool size for ParallelFor
  bool smoke = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](size_t fallback) -> size_t {
      return i + 1 < argc ? static_cast<size_t>(std::atoll(argv[++i]))
                          : fallback;
    };
    if (std::strcmp(argv[i], "--pes") == 0) args.pes = next(args.pes);
    else if (std::strcmp(argv[i], "--writers") == 0)
      args.writers = next(args.writers);
    else if (std::strcmp(argv[i], "--mixed-ops") == 0)
      args.mixed_ops = next(args.mixed_ops);
    else if (std::strcmp(argv[i], "--bulk") == 0) args.bulk = next(args.bulk);
    else if (std::strcmp(argv[i], "--pool-threads") == 0)
      args.pool_threads = next(args.pool_threads);
    else if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
  }
  if (args.smoke) {
    args.pes = 24;
    args.writers = 4;
    args.per_writer = 6;
    args.mixed_ops = 80;
    args.bulk = 32;
    args.pool_threads = 2;
  }
  return args;
}

// ---- synthetic PE corpus -------------------------------------------------

struct PeSpec {
  std::string name;
  std::string code;
  std::string description;  ///< empty: exercises the CodeT5 auto-summary
};

std::vector<PeSpec> MakeCorpus(size_t n, uint64_t seed,
                               const std::string& prefix) {
  static const char* kVerbs[] = {
      "filters",  "aggregates", "joins",   "deduplicates", "normalizes",
      "enriches", "scores",     "samples", "buckets",      "throttles"};
  static const char* kNouns[] = {
      "sensor readings", "click events",     "log lines",
      "market ticks",    "user sessions",    "image tiles",
      "trade orders",    "telemetry frames", "graph edges"};
  static const char* kExtras[] = {
      "per key",         "within a sliding window", "with exponential decay",
      "before fan-out",  "under backpressure",      "for the dashboard",
      "in arrival order"};
  Rng rng(seed);
  std::vector<PeSpec> corpus;
  corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PeSpec spec;
    spec.name = prefix + std::to_string(i);
    int64_t k = rng.NextInt(2, 9);
    int64_t t = rng.NextInt(10, 99);
    // Three structurally different bodies so SPT features vary per PE.
    switch (rng.NextInt(0, 2)) {
      case 0:
        spec.code = "class " + spec.name +
                    "(IterativePE):\n"
                    "    def _process(self, data):\n"
                    "        return data * " + std::to_string(k) + " + " +
                    std::to_string(t) + "\n";
        break;
      case 1:
        spec.code = "class " + spec.name +
                    "(IterativePE):\n"
                    "    def _process(self, data):\n"
                    "        value = data + " + std::to_string(k) + "\n"
                    "        if value > " + std::to_string(t) + ":\n"
                    "            return value\n"
                    "        return None\n";
        break;
      default:
        spec.code = "class " + spec.name +
                    "(IterativePE):\n"
                    "    def _process(self, data):\n"
                    "        total = 0\n"
                    "        for item in data:\n"
                    "            total = total + item * " +
                    std::to_string(k) + "\n"
                    "        return total\n";
        break;
    }
    if (!rng.NextBool(0.2)) {  // 20% rely on the auto-summary
      spec.description = std::string(kVerbs[rng.NextBelow(10)]) + " " +
                         kNouns[rng.NextBelow(9)] + " " +
                         kExtras[rng.NextBelow(7)];
    }
    corpus.push_back(std::move(spec));
  }
  return corpus;
}

// ---- one registry+search instance guarded the way the server guards it --

struct Ingestor {
  registry::Database db;
  registry::Repository repo{db};
  search::SearchService search{repo};
  embed::CodeT5Sim codet5;
  std::shared_mutex mu;

  Ingestor() {
    Status s = registry::CreateLaminarSchema(db);
    if (!s.ok()) {
      std::fprintf(stderr, "schema: %s\n", s.message().c_str());
      std::exit(1);
    }
  }

  registry::PeRecord MakeRecord(const PeSpec& spec) const {
    registry::PeRecord pe;
    pe.code = spec.code;
    pe.name = spec.name;
    pe.description =
        spec.description.empty()
            ? codet5.Summarize(spec.code, embed::DescriptionContext::kFullClass)
            : spec.description;
    pe.type = "IterativePE";
    return pe;
  }

  /// The pre-rebuild path: summary, text encode, SPT featurization, row
  /// insert and index add all while holding the registry lock exclusively
  /// (the lock spans the same work the old handler did).
  Result<int64_t> RegisterBaseline(const PeSpec& spec) {
    std::unique_lock lock(mu);
    registry::PeRecord pe = MakeRecord(spec);
    pe.description_embedding =
        embed::ToJson(search.text_encoder().EncodeText(pe.description));
    Result<spt::FeatureBag> bag = search.aroma().Featurize(pe.code);
    if (bag.ok() && bag->total > 0) {
      pe.spt_embedding = spt::FeatureBagToJson(*bag);
    }
    Result<int64_t> id = repo.CreatePe(pe);
    if (!id.ok()) return id;
    Status added = search.AddPe(*id);
    if (!added.ok()) return added;
    return id;
  }

  /// The two-phase path: every encode runs before the lock; the exclusive
  /// section is just the row insert plus precomputed-vector upserts.
  Result<int64_t> RegisterTwoPhase(const PeSpec& spec) {
    registry::PeRecord pe = MakeRecord(spec);
    search::SearchService::PreparedPe prepared =
        search.PreparePe(pe.name, pe.description, /*stored=*/"", pe.code);
    pe.description_embedding = embed::ToJson(prepared.text_embedding);
    if (prepared.has_features) {
      pe.spt_embedding = spt::FeatureBagToJson(prepared.features);
    }
    std::unique_lock lock(mu);
    Result<int64_t> id = repo.CreatePe(pe);
    if (!id.ok()) return id;
    search.CommitPe(*id, std::move(prepared));
    return id;
  }

  std::vector<search::SearchHit> Semantic(const std::string& query) {
    std::shared_lock lock(mu);
    return search.SemanticSearch(query, search::SearchTarget::kPe, 5);
  }
};

using RegisterFn = Result<int64_t> (Ingestor::*)(const PeSpec&);

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx =
      static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

// ---- parity gate ---------------------------------------------------------

bool SameHits(const std::vector<search::SearchHit>& a,
              const std::vector<search::SearchHit>& b, const char* what) {
  if (a.size() != b.size()) {
    std::fprintf(stderr, "parity failure (%s): %zu hits != %zu hits\n", what,
                 a.size(), b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].score != b[i].score) {
      std::fprintf(stderr,
                   "parity failure (%s) at rank %zu: %s score=%.17g vs "
                   "%s score=%.17g\n",
                   what, i, a[i].name.c_str(), a[i].score, b[i].name.c_str(),
                   b[i].score);
      return false;
    }
  }
  return true;
}

/// Two-phase commits, and both bulk rebuilds, must be indistinguishable from
/// the in-lock path across all three search modalities.
bool ParityGate(const std::vector<PeSpec>& corpus, size_t pool_threads) {
  Ingestor in_lock;
  Ingestor two_phase;
  for (const PeSpec& spec : corpus) {
    Result<int64_t> a = in_lock.RegisterBaseline(spec);
    Result<int64_t> b = two_phase.RegisterTwoPhase(spec);
    if (!a.ok() || !b.ok() || *a != *b) {
      std::fprintf(stderr, "parity failure: registration of %s diverged\n",
                   spec.name.c_str());
      return false;
    }
  }
  auto compare_all = [&](const char* label) {
    for (const PeSpec& spec : corpus) {
      const std::string query =
          spec.description.empty() ? spec.name : spec.description;
      if (!SameHits(in_lock.Semantic(query), two_phase.Semantic(query),
                    label)) {
        return false;
      }
      auto lit_a = in_lock.search.LiteralSearch(spec.name,
                                                search::SearchTarget::kPe, 3);
      auto lit_b = two_phase.search.LiteralSearch(
          spec.name, search::SearchTarget::kPe, 3);
      if (!SameHits(lit_a, lit_b, label)) return false;
      auto rec_a = in_lock.search.CodeRecommendation(
          spec.code, search::SearchTarget::kPe, 3);
      auto rec_b = two_phase.search.CodeRecommendation(
          spec.code, search::SearchTarget::kPe, 3);
      if (!rec_a.ok() || !rec_b.ok() ||
          rec_a->size() != rec_b->size()) {
        std::fprintf(stderr, "parity failure (%s): recommendation sizes\n",
                     label);
        return false;
      }
      for (size_t i = 0; i < rec_a->size(); ++i) {
        if ((*rec_a)[i].id != (*rec_b)[i].id ||
            (*rec_a)[i].score != (*rec_b)[i].score) {
          std::fprintf(stderr, "parity failure (%s): recommendation rank "
                       "%zu\n", label, i);
          return false;
        }
      }
    }
    return true;
  };
  if (!compare_all("two-phase vs in-lock")) return false;
  // Serial rebuild of the two-phase instance must change nothing.
  if (!two_phase.search.ReindexAll(nullptr).ok()) return false;
  if (!compare_all("serial rebuild")) return false;
  // Parallel rebuild likewise, regardless of which pool thread prepared
  // which row.
  ThreadPool pool(pool_threads);
  if (!two_phase.search.ReindexAll(&pool).ok()) return false;
  if (!compare_all("parallel rebuild")) return false;
  return true;
}

// ---- measured sections ---------------------------------------------------

double SingleThreadRegsPerSec(const std::vector<PeSpec>& corpus,
                              RegisterFn reg) {
  Ingestor ing;
  Stopwatch watch;
  for (const PeSpec& spec : corpus) {
    if (!(ing.*reg)(spec).ok()) std::exit(1);
  }
  return static_cast<double>(corpus.size()) / watch.ElapsedSeconds();
}

double MultiWriterRegsPerSec(const std::vector<PeSpec>& corpus,
                             size_t writers, RegisterFn reg) {
  Ingestor ing;
  std::atomic<size_t> failures{0};
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  const size_t per_writer = corpus.size() / writers;
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = w * per_writer; i < (w + 1) * per_writer; ++i) {
        if (!(ing.*reg)(corpus[i]).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double seconds = watch.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "multi-writer registrations failed\n");
    std::exit(1);
  }
  return static_cast<double>(per_writer * writers) / seconds;
}

struct MixedOut {
  double ops_per_sec = 0.0;
  double search_p50_ms = 0.0;
  double search_p95_ms = 0.0;
};

/// 90/10 read/write mix: every 10th op registers a PE, the rest run
/// semantic searches under the shared lock — the server's routing shape.
MixedOut MixedWorkload(const std::vector<PeSpec>& seed,
                       const std::vector<PeSpec>& fresh, size_t threads,
                       size_t total_ops, RegisterFn reg) {
  Ingestor ing;
  for (const PeSpec& spec : seed) {
    if (!(ing.*reg)(spec).ok()) std::exit(1);
  }
  std::vector<std::string> queries;
  queries.reserve(seed.size());
  for (const PeSpec& spec : seed) {
    queries.push_back(spec.description.empty() ? spec.name : spec.description);
  }
  const size_t per_thread = total_ops / threads;
  std::vector<std::vector<double>> lat(threads);
  std::atomic<size_t> next_fresh{0};
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lat[t].reserve(per_thread);
      for (size_t i = 0; i < per_thread; ++i) {
        if (i % 10 == 9) {
          size_t idx = next_fresh.fetch_add(1);
          if (idx < fresh.size()) {
            if (!(ing.*reg)(fresh[idx]).ok()) std::exit(1);
            continue;
          }
        }
        Stopwatch one;
        ing.Semantic(queries[(t * per_thread + i) % queries.size()]);
        lat[t].push_back(one.ElapsedMillis());
      }
    });
  }
  for (std::thread& w : workers) w.join();
  double seconds = watch.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& per : lat) all.insert(all.end(), per.begin(), per.end());
  std::sort(all.begin(), all.end());
  MixedOut out;
  out.ops_per_sec = static_cast<double>(per_thread * threads) / seconds;
  out.search_p50_ms = Percentile(all, 0.50);
  out.search_p95_ms = Percentile(all, 0.95);
  return out;
}

int RunBench(const Args& args) {
  BenchReport report("ingest");
  std::printf("bench_ingest: pes=%zu writers=%zu per_writer=%zu "
              "mixed_ops=%zu bulk=%zu pool_threads=%zu hw_threads=%u%s\n\n",
              args.pes, args.writers, args.per_writer, args.mixed_ops,
              args.bulk, args.pool_threads,
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke)" : "");

  // Correctness gate first, in every mode: the fast path must be
  // indistinguishable from the old one.
  std::vector<PeSpec> parity_corpus =
      MakeCorpus(args.smoke ? 24 : 48, 0x1a71e5ULL, "ParityPe");
  if (!ParityGate(parity_corpus, args.pool_threads)) return 1;
  std::printf("parity: two-phase, serial-rebuild and parallel-rebuild "
              "indexes all match the in-lock path on %zu PEs x 3 "
              "modalities\n\n", parity_corpus.size());

  // --- single-thread registrations/sec ---
  std::vector<PeSpec> corpus_1t = MakeCorpus(args.pes, 0x0ddba11ULL, "SoloPe");
  double base_1t =
      SingleThreadRegsPerSec(corpus_1t, &Ingestor::RegisterBaseline);
  double two_1t =
      SingleThreadRegsPerSec(corpus_1t, &Ingestor::RegisterTwoPhase);
  std::printf("single-thread ingest (%zu registrations)\n", args.pes);
  std::printf("  %-38s %10.1f regs/s\n", "in-lock encode (old path)", base_1t);
  std::printf("  %-38s %10.1f regs/s\n", "two-phase commit (new path)",
              two_1t);
  std::printf("  speedup: %.2fx\n\n", two_1t / base_1t);

  // --- 8-writer registrations/sec: the headline number. With encodes
  // in-lock every writer serializes; two-phase overlaps all encode work. ---
  std::vector<PeSpec> corpus_mw =
      MakeCorpus(args.writers * args.per_writer, 0xfa57f00dULL, "FleetPe");
  double base_mw =
      MultiWriterRegsPerSec(corpus_mw, args.writers, &Ingestor::RegisterBaseline);
  double two_mw =
      MultiWriterRegsPerSec(corpus_mw, args.writers, &Ingestor::RegisterTwoPhase);
  std::printf("%zu-writer ingest (%zu registrations total)\n", args.writers,
              corpus_mw.size());
  std::printf("  %-38s %10.1f regs/s\n", "in-lock encode (old path)", base_mw);
  std::printf("  %-38s %10.1f regs/s\n", "two-phase commit (new path)",
              two_mw);
  std::printf("  speedup: %.2fx (encode overlap is bounded by the hardware "
              "limit: %u core(s))\n\n",
              two_mw / base_mw, std::thread::hardware_concurrency());

  // --- 90/10 mixed read/write: searches run under the shared lock, so the
  // question is how long writers block them out. ---
  std::vector<PeSpec> mixed_seed =
      MakeCorpus(args.smoke ? 16 : 64, 0x5eedf00dULL, "MixSeedPe");
  std::vector<PeSpec> mixed_fresh =
      MakeCorpus(args.mixed_ops / 10 + args.writers, 0xf7e5ffULL, "MixNewPe");
  MixedOut base_mix = MixedWorkload(mixed_seed, mixed_fresh, args.writers,
                                    args.mixed_ops,
                                    &Ingestor::RegisterBaseline);
  MixedOut two_mix = MixedWorkload(mixed_seed, mixed_fresh, args.writers,
                                   args.mixed_ops,
                                   &Ingestor::RegisterTwoPhase);
  std::printf("90/10 read/write mix (%zu ops, %zu threads, search latency)\n",
              args.mixed_ops, args.writers);
  std::printf("  %-38s %10.1f ops/s  p50=%.3f ms  p95=%.3f ms\n",
              "in-lock encode (old path)", base_mix.ops_per_sec,
              base_mix.search_p50_ms, base_mix.search_p95_ms);
  std::printf("  %-38s %10.1f ops/s  p50=%.3f ms  p95=%.3f ms\n",
              "two-phase commit (new path)", two_mix.ops_per_sec,
              two_mix.search_p50_ms, two_mix.search_p95_ms);
  std::printf("  search p95: %.3f ms -> %.3f ms\n\n", base_mix.search_p95_ms,
              two_mix.search_p95_ms);

  // --- bulk rebuild: the startup/load path. ---
  std::vector<PeSpec> bulk_corpus =
      MakeCorpus(args.bulk, 0xb01dULL, "BulkPe");
  Ingestor bulk_ing;
  for (const PeSpec& spec : bulk_corpus) {
    if (!bulk_ing.RegisterTwoPhase(spec).ok()) return 1;
  }
  Stopwatch serial_watch;
  if (!bulk_ing.search.ReindexAll(nullptr).ok()) return 1;
  double serial_ms = serial_watch.ElapsedMillis();
  ThreadPool pool(args.pool_threads);
  Stopwatch pooled_watch;
  if (!bulk_ing.search.ReindexAll(&pool).ok()) return 1;
  double pooled_ms = pooled_watch.ElapsedMillis();
  std::printf("bulk index rebuild (%zu PEs)\n", args.bulk);
  std::printf("  %-38s %10.1f ms\n", "serial prepare+commit", serial_ms);
  std::printf("  %-38s %10.1f ms  (%zu pool threads + caller)\n",
              "ParallelFor prepare, serial commit", pooled_ms,
              args.pool_threads);
  std::printf("  speedup: %.2fx\n", serial_ms / pooled_ms);

  report.Set("pes", static_cast<int64_t>(args.pes));
  report.Set("writers", static_cast<int64_t>(args.writers));
  report.Set("pool_threads", static_cast<int64_t>(args.pool_threads));
  report.Set("inlock_regs_per_s_1t", base_1t);
  report.Set("twophase_regs_per_s_1t", two_1t);
  report.Set("speedup_1t", two_1t / base_1t);
  report.Set("inlock_regs_per_s_mw", base_mw);
  report.Set("twophase_regs_per_s_mw", two_mw);
  report.Set("speedup_8writer", two_mw / base_mw);
  report.Set("mixed_inlock_ops_per_s", base_mix.ops_per_sec);
  report.Set("mixed_twophase_ops_per_s", two_mix.ops_per_sec);
  report.Set("mixed_inlock_search_p95_ms", base_mix.search_p95_ms);
  report.Set("mixed_twophase_search_p95_ms", two_mix.search_p95_ms);
  report.Set("bulk_docs", static_cast<int64_t>(args.bulk));
  report.Set("bulk_serial_ms", serial_ms);
  report.Set("bulk_parallel_ms", pooled_ms);
  report.Set("bulk_speedup", serial_ms / pooled_ms);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace laminar::bench

int main(int argc, char** argv) {
  return laminar::bench::RunBench(laminar::bench::ParseArgs(argc, argv));
}
