// Reproduces Fig. 11: precision-recall for text-to-code semantic search.
//
// Protocol (paper §VII-C): for every PE in the CodeSearchNet-PE corpus, a
// description is generated with CodeT5 (full-class context), embedded with
// UniXcoder and stored; the *original* natural-language description (here:
// its held-out paraphrase) is then used as the query, and retrieval is
// scored against the PE's semantic group. The paper reports a best F1 of
// 0.61 — expect the same neighbourhood, not the same digit.
#include <cstdio>

#include "bench_util.hpp"
#include "embed/codet5_sim.hpp"
#include "embed/unixcoder_sim.hpp"

using namespace laminar;

int main() {
  std::printf("== Fig. 11: precision-recall for text-to-code search ==\n\n");
  bench::BenchReport report("fig11_text_to_code");
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(bench::DefaultCorpusConfig());
  std::printf("corpus: %zu PEs across %zu semantic groups\n\n", ds.size(),
              ds.family_count());

  embed::CodeT5Sim codet5;
  embed::UnixcoderSim unixcoder;

  // Registration side: CodeT5 description -> UniXcoder embedding.
  std::vector<embed::Vector> stored;
  stored.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    std::string description =
        codet5.Summarize(ex.pe_code, embed::DescriptionContext::kFullClass);
    stored.push_back(unixcoder.EncodeText(description));
  }

  // Query side: rank all PEs by cosine for each paraphrase query.
  constexpr size_t kMaxK = 15;
  std::vector<std::vector<int64_t>> ranked;
  ranked.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    embed::Vector q = unixcoder.EncodeText(ex.query);
    std::vector<std::pair<double, int64_t>> scored;
    scored.reserve(ds.size());
    for (size_t i = 0; i < ds.size(); ++i) {
      scored.emplace_back(embed::Cosine(q, stored[i]), ds.example(i).id);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<int64_t> ids;
    for (size_t i = 0; i < kMaxK && i < scored.size(); ++i) {
      ids.push_back(scored[i].second);
    }
    ranked.push_back(std::move(ids));
  }

  std::vector<std::unordered_set<int64_t>> relevant =
      bench::GroupRelevance(ds);
  auto curve = search::PrecisionRecallCurve(ranked, relevant, kMaxK);
  bench::PrintPrCurve("text-to-code (UniXcoder embeddings of CodeT5 descriptions)",
                      curve);
  std::printf("paper reference: best F1 = 0.61\n");

  report.Set("corpus_size", static_cast<int64_t>(ds.size()));
  bench::ReportPrCurve(report, "text_to_code", curve);
  report.Write();
  return 0;
}
