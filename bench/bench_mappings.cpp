// Reproduces the dispel4py parallel-execution behaviour the paper's §IV-A
// showcases (run vs run_multiprocess vs run_dynamic): throughput scaling of
// a CPU-bound pipeline under the three mappings, plus the dynamic mapping's
// autoscaling response.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"

using namespace laminar;
using namespace laminar::dataflow;

namespace {

std::unique_ptr<WorkflowGraph> BurnGraph(uint64_t iters) {
  auto g = std::make_unique<WorkflowGraph>("burn_wf");
  auto& producer = g->AddPE<NumberProducer>(17);
  auto& burn = g->AddPE<CpuBurn>(iters);
  auto& sink = g->AddPE<NullSink>();
  (void)g->Connect(producer, burn);
  (void)g->Connect(burn, sink);
  return g;
}

}  // namespace

int main() {
  std::printf("== dispel4py mappings: sequential vs multiprocessing vs "
              "dynamic (Redis-style) ==\n\n");
  constexpr int kTuples = 256;
  constexpr uint64_t kIters = 400'000;
  unsigned hw = std::thread::hardware_concurrency();
  std::printf("workload: %d tuples x %llu busy-iterations; host has %u "
              "hardware threads\n\n",
              kTuples, static_cast<unsigned long long>(kIters), hw);

  RunOptions base;
  base.input = Value(kTuples);

  // Sequential baseline.
  SequentialMapping seq;
  Stopwatch seq_watch;
  RunResult seq_result = seq.Execute(*BurnGraph(kIters), base);
  double seq_ms = seq_watch.ElapsedMillis();
  std::printf("%-24s %-10s %-12s %-10s\n", "mapping", "procs", "elapsed ms",
              "speedup");
  std::printf("%-24s %-10s %-12.1f %-10s\n", "simple (sequential)", "1",
              seq_ms, "1.0x");

  // Multi mapping: sweep process count.
  for (int procs : {3, 4, 6, 8, 12, 16}) {
    MultiMapping multi;
    RunOptions options = base;
    options.num_processes = procs;
    Stopwatch watch;
    RunResult result = multi.Execute(*BurnGraph(kIters), options);
    double ms = watch.ElapsedMillis();
    if (!result.status.ok()) {
      std::printf("multi(%d) failed: %s\n", procs,
                  result.status.ToString().c_str());
      continue;
    }
    std::printf("%-24s %-10d %-12.1f %-9.1fx\n", "multi (static)", procs, ms,
                seq_ms / ms);
  }

  // Dynamic mapping: fixed pools and autoscaling.
  for (int workers : {2, 4, 8}) {
    DynamicMapping dynamic;
    RunOptions options = base;
    options.initial_workers = workers;
    options.max_workers = workers;
    options.autoscale = false;
    Stopwatch watch;
    RunResult result = dynamic.Execute(*BurnGraph(kIters), options);
    double ms = watch.ElapsedMillis();
    std::printf("%-24s %-10d %-12.1f %-9.1fx\n", "dynamic (fixed pool)",
                workers, ms, seq_ms / ms);
    (void)result;
  }
  {
    DynamicMapping dynamic;
    RunOptions options = base;
    options.initial_workers = 1;
    options.max_workers = 12;
    options.autoscale = true;
    options.autoscale_queue_per_worker = 4;
    Stopwatch watch;
    RunResult result = dynamic.Execute(*BurnGraph(kIters), options);
    double ms = watch.ElapsedMillis();
    std::printf("%-24s %d->%-7d %-12.1f %-9.1fx\n", "dynamic (autoscale)", 1,
                result.peak_workers, ms, seq_ms / ms);
  }

  if (hw <= 1) {
    std::printf(
        "\nNOTE: this host exposes a single hardware thread, so parallel "
        "mappings cannot beat sequential wall-clock here; the meaningful "
        "reading on this host is the *overhead* of each mapping (how close "
        "its elapsed stays to 1.0x) and the autoscaler's pool growth. On a "
        "multi-core host, multi and dynamic scale with the CpuBurn stage's "
        "rank count until core saturation.\n");
  } else {
    std::printf(
        "\nexpected shape: multi scales until the CpuBurn stage saturates "
        "cores; dynamic matches multi at equal worker counts without a "
        "static partition, and the autoscaler grows the pool from 1 toward "
        "the saturation point on its own.\n");
  }
  std::printf("\n");
  bench::PrintHistogramSummary(
      "telemetry: per-mapping enactment percentiles",
      {{"laminar_dataflow_enact_ms", "mapping=\"simple\""},
       {"laminar_dataflow_enact_ms", "mapping=\"multi\""},
       {"laminar_dataflow_enact_ms", "mapping=\"dynamic\""}});
  return 0;
}
