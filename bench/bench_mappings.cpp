// Reproduces the dispel4py parallel-execution behaviour the paper's §IV-A
// showcases (run vs run_multiprocess vs run_dynamic): throughput scaling of
// a CPU-bound pipeline under the three mappings, plus the dynamic mapping's
// autoscaling response — and, since the data-plane rework, a broker
// data-plane section that measures dynamic-mapping tuple throughput with
// micro-batching on and off against the pre-PR per-tuple protocol.
//
// Usage: bench_mappings [--smoke]
// --smoke shrinks the workloads to sub-second sizes and runs the parity
// gate only: batched dynamic output must equal the sequential mapping's
// (exit 1 on divergence), so ctest catches data-plane regressions.
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "broker/broker.hpp"
#include "common/clock.hpp"
#include "common/json.hpp"
#include "dataflow/dynamic_mapping.hpp"
#include "dataflow/multi_mapping.hpp"
#include "dataflow/pe_library.hpp"
#include "dataflow/sequential_mapping.hpp"

using namespace laminar;
using namespace laminar::dataflow;

namespace {

std::unique_ptr<WorkflowGraph> BurnGraph(uint64_t iters) {
  auto g = std::make_unique<WorkflowGraph>("burn_wf");
  auto& producer = g->AddPE<NumberProducer>(17);
  auto& burn = g->AddPE<CpuBurn>(iters);
  auto& sink = g->AddPE<NullSink>();
  (void)g->Connect(producer, burn);
  (void)g->Connect(burn, sink);
  return g;
}

// ---- data-plane section: trivial PEs so the transport dominates ----

/// Forwards the iteration payload (stateless: parallelizes across workers).
class FwdProducer final : public Clonable<FwdProducer, ProducerBase> {
 public:
  FwdProducer() { set_name("FwdProducer"); }
  void Process(std::string_view, const Value& value, Emitter& out) override {
    out.Emit(kDefaultOutput, value);
  }
};

class AddOne final : public Clonable<AddOne, IterativePE> {
 public:
  AddOne() { set_name("AddOne"); }
  std::optional<Value> ProcessItem(const Value& v, Emitter&) override {
    return Value(v.as_int(0) + 1);
  }
};

class Drop final : public Clonable<Drop, ConsumerBase> {
 public:
  Drop() { set_name("Drop"); }
  void Process(std::string_view, const Value&, Emitter&) override {}
};

std::unique_ptr<WorkflowGraph> DataPlaneGraph() {
  auto g = std::make_unique<WorkflowGraph>("dataplane_wf");
  auto& producer = g->AddPE<FwdProducer>();
  auto& stage = g->AddPE<AddOne>();
  auto& sink = g->AddPE<Drop>();
  (void)g->Connect(producer, stage);
  (void)g->Connect(stage, sink);
  return g;
}

/// The pre-PR per-tuple protocol, reproduced against the same broker: every
/// tuple is one {"port","value"} JSON object wrap, one RPush, one
/// single-item BLPop, and one full JSON parse — exactly what the dynamic
/// mapping's data plane did per tuple before micro-batching and the framed
/// wire format. A worker pool drives the same 3-stage forwarding pipeline,
/// so the measured difference is protocol cost, not workload. Deliberately
/// does NOT use the cancel-flag/Notify fast wakeup: pre-PR workers slept
/// out their pop timeout at end of run, and that tail was part of the
/// baseline's cost.
double LegacyProtocolTps(int workers, int tuples) {
  broker::Broker broker;
  const std::vector<std::string> keys = {"legacy:q:0", "legacy:q:1",
                                         "legacy:q:2"};
  auto encode = [](const char* port, const Value& value) {
    Value obj = Value::MakeObject();
    obj["port"] = port;
    obj["value"] = value;
    return obj.ToJson();
  };
  std::atomic<int64_t> pending{0};
  std::atomic<uint64_t> processed{0};
  std::atomic<bool> stop{false};
  for (int i = 0; i < tuples; ++i) {
    pending.fetch_add(1, std::memory_order_acq_rel);
    broker.RPush(keys[0], encode("iteration", Value(i)));
  }
  Stopwatch watch;
  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto item = broker.BLPop(keys, std::chrono::milliseconds(20));
        if (!item.has_value()) continue;
        Result<Value> parsed = json::Parse(item->second);
        if (parsed.ok()) {
          const Value payload = parsed->at("value");
          if (item->first == keys[0]) {
            pending.fetch_add(1, std::memory_order_acq_rel);
            broker.RPush(keys[1], encode("input", payload));
          } else if (item->first == keys[1]) {
            pending.fetch_add(1, std::memory_order_acq_rel);
            broker.RPush(keys[2],
                         encode("input", Value(payload.as_int(0) + 1)));
          }
          processed.fetch_add(1, std::memory_order_relaxed);
        }
        if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          stop.store(true, std::memory_order_release);
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  double ms = watch.ElapsedMillis();
  return static_cast<double>(processed.load()) / (ms / 1000.0);
}

double DynamicTps(const WorkflowGraph& graph, int workers, int tuples,
                  int send_batch, int recv_batch, int reps,
                  uint64_t* tuples_out = nullptr) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    RunOptions options;
    options.input = Value(tuples);
    options.initial_workers = workers;
    options.max_workers = workers;
    options.autoscale = false;
    options.send_batch_size = send_batch;
    options.recv_batch_size = recv_batch;
    DynamicMapping dynamic;
    Stopwatch watch;
    RunResult result = dynamic.Execute(graph, options);
    double ms = watch.ElapsedMillis();
    if (!result.status.ok()) {
      std::printf("dynamic run failed: %s\n", result.status.ToString().c_str());
      return 0;
    }
    if (tuples_out != nullptr) *tuples_out = result.tuples_processed;
    double tps = static_cast<double>(result.tuples_processed) / (ms / 1000.0);
    best = std::max(best, tps);
  }
  return best;
}

std::multiset<std::string> AsMultiset(const std::vector<std::string>& lines) {
  return {lines.begin(), lines.end()};
}

/// Parity gate: the batched dynamic mapping must produce exactly the
/// sequential mapping's output multiset on a primes pipeline. Returns
/// false (and prints the divergence) on regression.
bool ParityGate(int tuples) {
  auto g = std::make_unique<WorkflowGraph>("parity_wf");
  auto& producer = g->AddPE<FwdProducer>();
  auto& filter = g->AddPE<IsPrime>();
  auto& printer = g->AddPE<PrintPrime>();
  (void)g->Connect(producer, filter);
  (void)g->Connect(filter, printer);

  RunOptions options;
  options.input = Value(tuples);
  SequentialMapping sequential;
  RunResult expected = sequential.Execute(*g, options);

  options.initial_workers = 8;
  options.max_workers = 8;
  options.autoscale = false;
  options.send_batch_size = 32;
  options.recv_batch_size = 32;
  DynamicMapping dynamic;
  RunResult actual = dynamic.Execute(*g, options);

  const bool ok = actual.status.ok() &&
                  AsMultiset(actual.output_lines) ==
                      AsMultiset(expected.output_lines) &&
                  actual.failed_tuples == 0 && actual.dlq_depth == 0;
  std::printf("parity gate (batched dynamic == sequential, %d tuples): %s\n",
              tuples, ok ? "OK" : "FAILED");
  if (!ok) {
    std::printf("  status=%s lines=%zu (expected %zu) failed=%llu dlq=%llu\n",
                actual.status.ToString().c_str(), actual.output_lines.size(),
                expected.output_lines.size(),
                static_cast<unsigned long long>(actual.failed_tuples),
                static_cast<unsigned long long>(actual.dlq_depth));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::BenchReport report("mappings");
  unsigned hw = std::thread::hardware_concurrency();

  // ---- data-plane throughput: batched vs unbatched vs pre-PR protocol ----
  const int kDpWorkers = 8;
  const int kDpTuples = smoke ? 3000 : 60000;
  const int kDpReps = smoke ? 2 : 3;
  std::printf("== dynamic-mapping data plane: tuple micro-batching over the "
              "sharded broker ==\n\n");
  std::printf("workload: %d seed tuples x 3 trivial PE stages, %d workers "
              "(host has %u hardware threads)\n\n",
              kDpTuples, kDpWorkers, hw);

  auto dp_graph = DataPlaneGraph();
  double legacy_tps = LegacyProtocolTps(kDpWorkers, kDpTuples);
  uint64_t dp_tuples = 0;
  double unbatched_tps =
      DynamicTps(*dp_graph, kDpWorkers, kDpTuples, 1, 1, kDpReps, &dp_tuples);
  double batched_tps =
      DynamicTps(*dp_graph, kDpWorkers, kDpTuples, 32, 32, kDpReps);

  std::printf("%-40s %14s %10s\n", "data plane (8 workers)", "tuples/s",
              "speedup");
  std::printf("%-40s %14.0f %10s\n",
              "pre-PR per-tuple protocol (reference)", legacy_tps, "1.0x");
  std::printf("%-40s %14.0f %9.1fx\n", "dynamic, unbatched (batch=1)",
              unbatched_tps, unbatched_tps / legacy_tps);
  std::printf("%-40s %14.0f %9.1fx\n", "dynamic, batched (batch=32, default)",
              batched_tps, batched_tps / legacy_tps);
  std::printf("\nbatched vs pre-PR unbatched baseline: %.1fx (target >=3x)\n",
              batched_tps / legacy_tps);
  std::printf("batched vs unbatched same binary:     %.1fx\n\n",
              batched_tps / unbatched_tps);

  report.Set("dataplane_workers", static_cast<int64_t>(kDpWorkers));
  report.Set("dataplane_seed_tuples", static_cast<int64_t>(kDpTuples));
  report.Set("dataplane_tuples_processed", static_cast<int64_t>(dp_tuples));
  report.Set("legacy_protocol_tps", legacy_tps);
  report.Set("dynamic_unbatched_tps", unbatched_tps);
  report.Set("dynamic_batched_tps", batched_tps);
  report.Set("batched_vs_legacy_speedup", batched_tps / legacy_tps);
  report.Set("batched_vs_unbatched_speedup", batched_tps / unbatched_tps);

  // ---- parity gate ----
  const bool parity_ok = ParityGate(smoke ? 500 : 2000);
  report.Set("parity_gate", parity_ok ? std::string("ok")
                                      : std::string("FAILED"));
  std::printf("\n");

  if (!smoke) {
    // ---- the paper's three-mapping comparison on a CPU-bound pipeline ----
    std::printf("== dispel4py mappings: sequential vs multiprocessing vs "
                "dynamic (Redis-style) ==\n\n");
    constexpr int kTuples = 256;
    constexpr uint64_t kIters = 400'000;
    std::printf("workload: %d tuples x %llu busy-iterations\n\n", kTuples,
                static_cast<unsigned long long>(kIters));

    RunOptions base;
    base.input = Value(kTuples);

    SequentialMapping seq;
    Stopwatch seq_watch;
    RunResult seq_result = seq.Execute(*BurnGraph(kIters), base);
    double seq_ms = seq_watch.ElapsedMillis();
    std::printf("%-24s %-10s %-12s %-10s\n", "mapping", "procs", "elapsed ms",
                "speedup");
    std::printf("%-24s %-10s %-12.1f %-10s\n", "simple (sequential)", "1",
                seq_ms, "1.0x");
    {
      Value& row = report.AddRow();
      row["mapping"] = "simple";
      row["procs"] = static_cast<int64_t>(1);
      row["elapsed_ms"] = seq_ms;
    }

    for (int procs : {3, 4, 6, 8, 12, 16}) {
      MultiMapping multi;
      RunOptions options = base;
      options.num_processes = procs;
      Stopwatch watch;
      RunResult result = multi.Execute(*BurnGraph(kIters), options);
      double ms = watch.ElapsedMillis();
      if (!result.status.ok()) {
        std::printf("multi(%d) failed: %s\n", procs,
                    result.status.ToString().c_str());
        continue;
      }
      std::printf("%-24s %-10d %-12.1f %-9.1fx\n", "multi (static)", procs, ms,
                  seq_ms / ms);
      Value& row = report.AddRow();
      row["mapping"] = "multi";
      row["procs"] = static_cast<int64_t>(procs);
      row["elapsed_ms"] = ms;
    }

    for (int workers : {2, 4, 8}) {
      DynamicMapping dynamic;
      RunOptions options = base;
      options.initial_workers = workers;
      options.max_workers = workers;
      options.autoscale = false;
      Stopwatch watch;
      RunResult result = dynamic.Execute(*BurnGraph(kIters), options);
      double ms = watch.ElapsedMillis();
      std::printf("%-24s %-10d %-12.1f %-9.1fx\n", "dynamic (fixed pool)",
                  workers, ms, seq_ms / ms);
      (void)result;
      Value& row = report.AddRow();
      row["mapping"] = "dynamic";
      row["procs"] = static_cast<int64_t>(workers);
      row["elapsed_ms"] = ms;
    }
    {
      DynamicMapping dynamic;
      RunOptions options = base;
      options.initial_workers = 1;
      options.max_workers = 12;
      options.autoscale = true;
      options.autoscale_queue_per_worker = 4;
      Stopwatch watch;
      RunResult result = dynamic.Execute(*BurnGraph(kIters), options);
      double ms = watch.ElapsedMillis();
      std::printf("%-24s %d->%-7d %-12.1f %-9.1fx\n", "dynamic (autoscale)", 1,
                  result.peak_workers, ms, seq_ms / ms);
      Value& row = report.AddRow();
      row["mapping"] = "dynamic-autoscale";
      row["procs"] = static_cast<int64_t>(result.peak_workers);
      row["elapsed_ms"] = ms;
    }

    if (hw <= 1) {
      std::printf(
          "\nNOTE: this host exposes a single hardware thread, so parallel "
          "mappings cannot beat sequential wall-clock here; the meaningful "
          "readings are each mapping's *overhead* (how close its elapsed "
          "stays to 1.0x), the autoscaler's pool growth, and the data-plane "
          "protocol speedups above (which measure per-tuple transport cost, "
          "not parallelism). On a multi-core host, multi and dynamic scale "
          "with the CpuBurn stage's rank count until core saturation.\n");
    } else {
      std::printf(
          "\nexpected shape: multi scales until the CpuBurn stage saturates "
          "cores; dynamic matches multi at equal worker counts without a "
          "static partition, and the autoscaler grows the pool from 1 toward "
          "the saturation point on its own.\n");
    }
    std::printf("\n");
    bench::PrintHistogramSummary(
        "telemetry: per-mapping enactment percentiles",
        {{"laminar_dataflow_enact_ms", "mapping=\"simple\""},
         {"laminar_dataflow_enact_ms", "mapping=\"multi\""},
         {"laminar_dataflow_enact_ms", "mapping=\"dynamic\""}});
  }

  report.AddHistogram("laminar_dataflow_enact_ms", "mapping=\"simple\"");
  report.AddHistogram("laminar_dataflow_enact_ms", "mapping=\"multi\"");
  report.AddHistogram("laminar_dataflow_enact_ms", "mapping=\"dynamic\"");
  report.Write();
  return parity_ok ? 0 : 1;
}
