// Reproduces the §IV-E true-streaming evaluation: HTTP/1.1-style batch
// responses (Laminar 1.0) vs HTTP/2-style streamed responses (Laminar 2.0).
//
// A workflow emits one output line per tuple while burning CPU per tuple, so
// output trickles out over the run. The batch transport buffers everything
// until the workflow ends; the streaming transport forwards each line as it
// is produced. The headline metric is time-to-first-output.
#include <cstdio>

#include "bench_util.hpp"
#include "client/connect.hpp"
#include "common/json.hpp"

using namespace laminar;

namespace {

Value StreamSpec(int64_t burn_iters) {
  const char* templ = R"({
    "name": "stream_wf",
    "pes": [
      {"name": "Producer", "type": "NumberProducer",
       "params": {"seed": 5, "lo": 1, "hi": 100}},
      {"name": "Burn", "type": "CpuBurn", "params": {"iters": %lld}},
      {"name": "Echo", "type": "EchoSink", "params": {}}
    ],
    "edges": [
      {"from": "Producer", "to": "Burn"},
      {"from": "Burn", "to": "Echo"}
    ]
  })";
  char buf[1024];
  std::snprintf(buf, sizeof buf, templ, static_cast<long long>(burn_iters));
  return json::Parse(buf).value();
}

struct Sample {
  double first_line_ms;
  double total_ms;
  size_t lines;
};

Sample RunOnce(net::HttpConnection::Mode mode, int tuples, int64_t burn) {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config, mode);
  client::RunOutcome outcome = laminar.client->RunSpec(
      StreamSpec(burn), "simple", Value(tuples));
  Sample s{};
  s.first_line_ms = outcome.first_line_ms;
  s.total_ms = outcome.total_ms;
  s.lines = outcome.lines.size();
  if (!outcome.status.ok()) {
    std::printf("run failed: %s\n", outcome.status.ToString().c_str());
  }
  return s;
}

}  // namespace

int main() {
  std::printf("== §IV-E: batch (HTTP/1.1, Laminar 1.0) vs true streaming "
              "(HTTP/2, Laminar 2.0) ==\n\n");
  constexpr int64_t kBurn = 1'500'000;  // CPU work per tuple
  std::printf("workflow: NumberProducer -> CpuBurn(%lld iters/tuple) -> "
              "EchoSink (1 line per tuple)\n\n",
              static_cast<long long>(kBurn));
  std::printf("%-8s %-10s %-16s %-16s %-14s %-12s\n", "tuples", "mode",
              "first-line (ms)", "total (ms)", "lines", "ttfb gain");

  bench::BenchReport report("streaming");
  double max_gain = 0.0;
  for (int tuples : {20, 50, 100, 200}) {
    Sample batch = RunOnce(net::HttpConnection::Mode::kBatch, tuples, kBurn);
    Sample stream =
        RunOnce(net::HttpConnection::Mode::kStreaming, tuples, kBurn);
    double gain = stream.first_line_ms > 0
                      ? batch.first_line_ms / stream.first_line_ms
                      : 0.0;
    max_gain = std::max(max_gain, gain);
    std::printf("%-8d %-10s %-16.2f %-16.2f %-14zu\n", tuples, "batch",
                batch.first_line_ms, batch.total_ms, batch.lines);
    std::printf("%-8s %-10s %-16.2f %-16.2f %-14zu %-10.1fx\n", "", "stream",
                stream.first_line_ms, stream.total_ms, stream.lines, gain);
    Value& row = report.AddRow();
    row["tuples"] = static_cast<int64_t>(tuples);
    row["batch_first_line_ms"] = batch.first_line_ms;
    row["stream_first_line_ms"] = stream.first_line_ms;
    row["batch_total_ms"] = batch.total_ms;
    row["stream_total_ms"] = stream.total_ms;
    row["ttfb_gain"] = gain;
  }
  report.Set("max_ttfb_gain", max_gain);
  std::printf(
      "\nexpected shape: batch first-line ~= total runtime; streaming "
      "first-line ~= one tuple's work. The gap widens linearly with "
      "workflow length.\n\n");
  bench::PrintHistogramSummary(
      "telemetry: server-side latency percentiles",
      {{"laminar_server_request_ms", "path=\"/execute\""},
       {"laminar_engine_run_ms", ""},
       {"laminar_dataflow_enact_ms", "mapping=\"simple\""}});
  report.AddHistogram("laminar_server_request_ms", "path=\"/execute\"");
  report.AddHistogram("laminar_engine_run_ms");
  report.AddHistogram("laminar_dataflow_enact_ms", "mapping=\"simple\"");
  report.Write();
  return 0;
}
