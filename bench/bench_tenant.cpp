// Multi-tenant overload bench (ISSUE 8): one server, three tenants — alice
// and bob behave, mallory floods /execute from several threads. Mallory is
// boxed in by tenant quotas (one concurrent run, two queued, low fair-share
// weight), so the admission controller and FairRunQueue must keep the good
// tenants' throughput close to what they get on an idle server.
//
// Phase 1 measures each good tenant's isolated run QPS; phase 2 repeats the
// same workload while mallory floods. Headline: retained QPS fraction per
// good tenant, mallory's admitted/throttled split, and the per-tenant
// /stats slice reconciled against client-observed outcomes.
//
// --smoke shrinks the load and turns the fairness properties into gates:
// goods retain >= 80% of isolated QPS, every mallory refusal is a clean
// 429/408 (never a 5xx), quotas actually fired, and /stats matches what the
// clients saw.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/connect.hpp"
#include "common/json.hpp"

using namespace laminar;

namespace {

/// Latency-bound run (IoWait models the external-I/O waits that dominate
/// real serverless PEs): throughput is governed by the run scheduler, not
/// by raw CPU contention, so fairness is measurable even on tiny hosts.
Value RunSpecJson(int64_t wait_ms_per_tuple) {
  const char* templ = R"({
    "name": "tenant_wf",
    "pes": [
      {"name": "Producer", "type": "NumberProducer",
       "params": {"seed": 3, "lo": 1, "hi": 50}},
      {"name": "Wait", "type": "IoWait", "params": {"millis": %lld}},
      {"name": "Echo", "type": "EchoSink", "params": {}}
    ],
    "edges": [
      {"from": "Producer", "to": "Wait"},
      {"from": "Wait", "to": "Echo"}
    ]
  })";
  char buf[1024];
  std::snprintf(buf, sizeof buf, templ,
                static_cast<long long>(wait_ms_per_tuple));
  return json::Parse(buf).value();
}

server::ServerConfig TenantServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  config.run_workers = 4;  // slot pool the three tenants share
  // Mallory's box: one running, two queued, a quarter fair share. No
  // request-rate limit, so every refusal below is the run queue's doing and
  // /stats runsRejected reconciles exactly with client-observed 429s.
  server::TenantQuotas hostile;
  hostile.max_concurrent_runs = 1;
  hostile.max_queued_runs = 2;
  hostile.weight = 0.25;
  config.tenant_overrides["mallory"] = hostile;
  return config;
}

/// Client-observed outcomes of one tenant's drive loop.
struct DriveResult {
  int ok = 0;
  int rejected_429 = 0;
  int deadline_408 = 0;
  int other_errors = 0;  // anything that is not a clean refusal (gate: 0)
  double qps = 0.0;
};

/// Runs `runs` sequential executions as `tenant` and reports QPS.
DriveResult DriveRuns(server::LaminarServer& server, const std::string& tenant,
                      const Value& spec, int runs) {
  client::ExtraClient c = client::AttachClient(server);
  c.client->SetTenant(tenant);
  DriveResult r;
  Stopwatch wall;
  for (int i = 0; i < runs; ++i) {
    client::RunOutcome run = c.client->RunSpec(spec, "simple", Value(4));
    if (run.status.ok()) {
      ++r.ok;
    } else if (run.status.code() == StatusCode::kResourceExhausted) {
      ++r.rejected_429;
    } else if (run.status.code() == StatusCode::kDeadlineExceeded) {
      ++r.deadline_408;
    } else {
      ++r.other_errors;
      std::fprintf(stderr, "%s run error: %s\n", tenant.c_str(),
                   run.status.ToString().c_str());
    }
  }
  double secs = wall.ElapsedSeconds();
  r.qps = secs > 0 ? runs / secs : 0.0;
  return r;
}

/// Floods /execute as mallory until `stop`; respects the server's
/// retry-after hint loosely (a short pause per refusal) the way a
/// well-written but hostile client would.
DriveResult Flood(server::LaminarServer& server, const Value& spec,
                  const std::atomic<bool>& stop) {
  client::ExtraClient c = client::AttachClient(server);
  c.client->SetTenant("mallory");
  DriveResult r;
  while (!stop.load(std::memory_order_acquire)) {
    client::RunOutcome run = c.client->RunSpec(spec, "simple", Value(4));
    if (run.status.ok()) {
      ++r.ok;
    } else if (run.status.code() == StatusCode::kResourceExhausted) {
      ++r.rejected_429;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } else if (run.status.code() == StatusCode::kDeadlineExceeded) {
      ++r.deadline_408;
    } else {
      ++r.other_errors;
      std::fprintf(stderr, "mallory run error: %s\n",
                   run.status.ToString().c_str());
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kRunsPerTenant = smoke ? 10 : 40;
  const int kFloodThreads = 4;
  const int64_t kWaitMs = smoke ? 2 : 5;

  client::InProcessLaminar laminar = client::ConnectInProcess(TenantServer());
  const Value spec = RunSpecJson(kWaitMs);

  std::printf("== tenant overload bench: 2 good tenants vs 1 hostile ==\n");
  std::printf("runs/tenant: %d, flood threads: %d, run slots: 4, "
              "mallory box: 1 running / 2 queued / weight 0.25\n\n",
              kRunsPerTenant, kFloodThreads);

  // Phase 1: each good tenant alone on the server.
  DriveResult alice_iso = DriveRuns(*laminar.server, "alice", spec,
                                    kRunsPerTenant);
  DriveResult bob_iso = DriveRuns(*laminar.server, "bob", spec,
                                  kRunsPerTenant);
  std::printf("isolated:  alice %.1f qps, bob %.1f qps\n", alice_iso.qps,
              bob_iso.qps);

  // Phase 2: same workload while mallory floods from kFloodThreads threads.
  std::atomic<bool> stop{false};
  std::vector<std::thread> flood_threads;
  std::vector<DriveResult> flood_results(kFloodThreads);
  for (int i = 0; i < kFloodThreads; ++i) {
    flood_threads.emplace_back([&, i] {
      flood_results[i] = Flood(*laminar.server, spec, stop);
    });
  }
  DriveResult alice_load;
  DriveResult bob_load;
  std::thread alice_thread([&] {
    alice_load = DriveRuns(*laminar.server, "alice", spec, kRunsPerTenant);
  });
  std::thread bob_thread([&] {
    bob_load = DriveRuns(*laminar.server, "bob", spec, kRunsPerTenant);
  });
  alice_thread.join();
  bob_thread.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : flood_threads) t.join();

  DriveResult mallory;
  for (const DriveResult& r : flood_results) {
    mallory.ok += r.ok;
    mallory.rejected_429 += r.rejected_429;
    mallory.deadline_408 += r.deadline_408;
    mallory.other_errors += r.other_errors;
  }

  double alice_retained =
      alice_iso.qps > 0 ? alice_load.qps / alice_iso.qps : 0.0;
  double bob_retained = bob_iso.qps > 0 ? bob_load.qps / bob_iso.qps : 0.0;
  std::printf("contended: alice %.1f qps (%.0f%%), bob %.1f qps (%.0f%%)\n",
              alice_load.qps, 100.0 * alice_retained, bob_load.qps,
              100.0 * bob_retained);
  std::printf("mallory:   %d admitted, %d refused 429, %d expired 408, "
              "%d other\n\n",
              mallory.ok, mallory.rejected_429, mallory.deadline_408,
              mallory.other_errors);

  // Reconcile the per-tenant /stats slice with client-observed outcomes.
  Result<Value> stats = laminar.client->GetStats();
  if (!stats.ok()) {
    std::fprintf(stderr, "GetStats: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  const Value& tenants = stats->at("tenants");
  const int alice_total_ok = alice_iso.ok + alice_load.ok;
  const int bob_total_ok = bob_iso.ok + bob_load.ok;
  std::printf("/stats tenants slice:\n");
  for (const char* t : {"alice", "bob", "mallory"}) {
    const Value& row = tenants.at(t);
    std::printf("  %-8s runsSucceeded %-4lld runsRejected %-4lld "
                "runsAdmitted %-4lld queued %lld\n",
                t, static_cast<long long>(row.GetInt("runsSucceeded")),
                static_cast<long long>(row.GetInt("runsRejected")),
                static_cast<long long>(row.GetInt("runsAdmitted")),
                static_cast<long long>(row.GetInt("queued")));
  }

  bench::BenchReport report("tenant");
  for (const char* t : {"alice", "bob", "mallory"}) {
    const Value& slice = tenants.at(t);
    Value& row = report.AddRow();
    row["tenant"] = t;
    row["runsSucceeded"] = slice.GetInt("runsSucceeded");
    row["runsRejected"] = slice.GetInt("runsRejected");
    row["runsAdmitted"] = slice.GetInt("runsAdmitted");
  }
  report.Set("alice_isolated_qps", alice_iso.qps);
  report.Set("alice_contended_qps", alice_load.qps);
  report.Set("alice_retained", alice_retained);
  report.Set("bob_isolated_qps", bob_iso.qps);
  report.Set("bob_contended_qps", bob_load.qps);
  report.Set("bob_retained", bob_retained);
  report.Set("mallory_admitted", static_cast<int64_t>(mallory.ok));
  report.Set("mallory_rejected_429", static_cast<int64_t>(mallory.rejected_429));
  report.Set("mallory_deadline_408", static_cast<int64_t>(mallory.deadline_408));
  report.AddHistogram("laminar_tenant_queue_wait_ms", "tenant=\"alice\"");
  report.AddHistogram("laminar_tenant_queue_wait_ms", "tenant=\"mallory\"");
  report.Write();

  if (smoke) {
    bool ok = true;
    auto gate = [&](bool cond, const char* what) {
      if (!cond) {
        std::fprintf(stderr, "SMOKE GATE FAILED: %s\n", what);
        ok = false;
      }
    };
    // Isolation: the flood must not take more than 20% off the good
    // tenants' throughput (the acceptance bar for the fair run queue).
    gate(alice_retained >= 0.8, "alice retains >= 80% of isolated QPS");
    gate(bob_retained >= 0.8, "bob retains >= 80% of isolated QPS");
    // Containment: quota refusals are clean 429/408 — never a 5xx — and
    // the box actually fired (an unboxed mallory would admit everything).
    gate(alice_iso.ok + alice_load.ok == 2 * kRunsPerTenant &&
             bob_iso.ok + bob_load.ok == 2 * kRunsPerTenant,
         "good tenants complete every run");
    gate(mallory.other_errors == 0, "no mallory refusal was a 5xx");
    gate(mallory.rejected_429 > 0, "mallory's quota box fired at least once");
    // Accounting: the per-tenant /stats slice matches what clients saw.
    gate(tenants.at("alice").GetInt("runsSucceeded") == alice_total_ok,
         "/stats alice runsSucceeded reconciles with ##END## outcomes");
    gate(tenants.at("bob").GetInt("runsSucceeded") == bob_total_ok,
         "/stats bob runsSucceeded reconciles with ##END## outcomes");
    gate(tenants.at("mallory").GetInt("runsSucceeded") == mallory.ok,
         "/stats mallory runsSucceeded reconciles");
    gate(tenants.at("mallory").GetInt("runsRejected") == mallory.rejected_429,
         "/stats mallory runsRejected reconciles with observed 429s");
    // The per-tenant telemetry series exist for scraping.
    Result<std::string> metrics = laminar.client->GetMetrics();
    gate(metrics.ok() &&
             metrics->find("laminar_tenant_runs_total{tenant=\"mallory\"") !=
                 std::string::npos,
         "per-tenant run counters exposed on /metrics");
    if (!ok) return 1;
    std::printf("smoke gates passed\n");
  }
  return 0;
}
