// bench_search — before/after measurement of the search query path rebuild
// (ISSUE 2): legacy brute-force scan (unordered_map of embed::Vector rows,
// per-pair embed::Cosine with both norms recomputed, full sort for top-k)
// versus the flat SoA VectorIndex (normalize-at-insert, unrolled dot kernel,
// bounded top-k heap, optional sharded scan), plus concurrent-reader scaling
// in the shape of the server's shared-lock read path and a query-embedding
// cache demonstration.
//
// The second half is the ISSUE 6 corpus sweep: stream-generate PEs with
// dataset::PeStream (1M+ in the full run, never holding the corpus), give
// each a family-clustered synthetic embedding (the family description's
// encoded centroid plus per-PE deterministic noise), and grow a flat-scan
// index and an HNSW index over identical vectors through 10k -> 100k -> 1M
// rows, reporting QPS, recall@10 vs the exact scan, p50/p95 ANN latency and
// index/graph memory per stage into BENCH_search.json.
//
// The ISSUE 10 additions: a kernels section measuring the dispatched
// simd::Dot / DotBatch / DotI8 throughput (GB/s) at every tier the host can
// run (scalar is always included, so the dispatch win is visible in one
// table), and the sweep now measures each corpus stage three ways — flat
// exact scan, ANN over float rows, and ANN over the SQ8 quantized mirror
// (toggled on the *same* built graph via SetQuantize, so no extra build) —
// reporting recall@10 and bit-exact rerank parity for both ANN variants
// plus the quantized-vs-float row-storage ratio.
//
// Usage:
//   bench_search [--docs N] [--dims N] [--queries N] [--threads N] [--k N]
//                [--max-corpus N] [--smoke]
// --dims also sets the sweep dimensionality (default 64 there; the first
// sections default to 256). --max-corpus drops sweep stages above N rows —
// the full 1M stage dominates wall time, so a 100k cap is the fast local
// iteration loop.
// --smoke shrinks everything to a small corpus and asserts correctness
// (flat results == legacy results) plus the ANN gates — recall@10 >= 0.95
// for both the float and SQ8 traversals, ANN scores bit-identical to the
// exact scan on returned ids (again both variants), and >= 10x
// ANN-over-flat QPS — with fixed seeds and a serial graph build, so the
// gates are deterministic rather than perf-flaky.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataset/families.hpp"
#include "dataset/generator.hpp"
#include "embed/embedding.hpp"
#include "embed/unixcoder_sim.hpp"
#include "search/query_cache.hpp"
#include "search/vector_index.hpp"
#include "simd/simd.hpp"

namespace laminar::bench {
namespace {

struct Args {
  size_t docs = 10000;
  size_t dims = 256;
  size_t queries = 64;
  size_t threads = 8;
  size_t k = 10;
  /// Sweep stages above this row count are skipped (wall-time control: the
  /// 1M stage is ~90% of the full run).
  size_t max_corpus = 1000000;
  /// Sweep dimensionality; --dims overrides it along with the micro dims.
  size_t sweep_dims = 64;
  bool smoke = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](size_t fallback) -> size_t {
      return i + 1 < argc ? static_cast<size_t>(std::atoll(argv[++i]))
                          : fallback;
    };
    if (std::strcmp(argv[i], "--docs") == 0) args.docs = next(args.docs);
    else if (std::strcmp(argv[i], "--dims") == 0) {
      args.dims = next(args.dims);
      args.sweep_dims = args.dims;
    }
    else if (std::strcmp(argv[i], "--queries") == 0)
      args.queries = next(args.queries);
    else if (std::strcmp(argv[i], "--threads") == 0)
      args.threads = next(args.threads);
    else if (std::strcmp(argv[i], "--k") == 0) args.k = next(args.k);
    else if (std::strcmp(argv[i], "--max-corpus") == 0)
      args.max_corpus = next(args.max_corpus);
    else if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
  }
  if (args.smoke) {
    args.docs = 400;
    args.dims = 64;
    args.sweep_dims = 64;
    args.queries = 12;
    args.threads = 2;
    args.k = 5;
  }
  return args;
}

embed::Vector RandomVector(Rng& rng, size_t dims) {
  embed::Vector v(dims);
  for (float& x : v) {
    x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  return v;
}

struct ScoredRef {
  int64_t id;
  float score;
};

/// The retained legacy path, exactly as SearchService::RankByCosine ran
/// before this rebuild: hash-map iteration, embed::Cosine per pair (both
/// norms recomputed every time), full sort, truncate.
std::vector<ScoredRef> LegacyBruteForce(
    const std::unordered_map<int64_t, embed::Vector>& docs,
    const embed::Vector& query, size_t k) {
  std::vector<ScoredRef> hits;
  hits.reserve(docs.size());
  for (const auto& [id, vec] : docs) {
    hits.push_back({id, embed::Cosine(query, vec)});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredRef& a, const ScoredRef& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

/// A point of family `centroid` plus deterministic per-dimension noise of
/// ~unit norm, derived only from `salt` — the PE-id-seeded synthetic
/// embedding the corpus sweep uses. (Real per-PE encodes would collapse:
/// every variant of a family shares one description, so 33k rows would tie
/// exactly and recall@10 would be meaningless. The centroid+noise mixture
/// keeps the family cluster structure while making per-row ranking
/// well-posed.) Not normalized; VectorIndex normalizes at insert.
embed::Vector ClusterPoint(const embed::Vector& centroid, uint64_t salt) {
  Rng rng(hashing::SplitMix64(salt));
  const size_t dims = centroid.size();
  const float amp = std::sqrt(3.0f / static_cast<float>(dims));
  embed::Vector v(dims);
  for (size_t i = 0; i < dims; ++i) {
    v[i] = centroid[i] +
           amp * static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  return v;
}

/// ISSUE 10 kernels section: raw throughput of the dispatched dot kernels
/// at every tier this host can run. One query is scanned against a
/// multi-megabyte row block (so the measurement is memory-bandwidth-shaped,
/// like the real flat scan), once through the float32 kernels and once
/// through the int8 SQ8 kernel; GB/s counts the bytes of row data streamed.
void RunKernels(const Args& args, BenchReport& report) {
  const size_t dims = args.smoke ? 64 : 256;
  const size_t rows = args.smoke ? 4096 : 16384;
  const size_t reps = args.smoke ? 8 : 64;

  Rng rng(0x51d0cafeULL);
  std::vector<float> block(rows * dims);
  for (float& x : block) {
    x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  std::vector<float> query(dims);
  for (float& x : query) {
    x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  std::vector<float> out(rows);
  std::vector<int8_t> qblock(rows * dims);
  for (int8_t& c : qblock) {
    c = static_cast<int8_t>(static_cast<int>(rng.NextBelow(255)) - 127);
  }
  std::vector<int8_t> q8(dims);
  for (size_t i = 0; i < dims; ++i) q8[i] = qblock[i];

  const simd::Tier before = simd::ActiveTier();
  std::printf("kernel throughput (1 query x %zu rows x %zu dims, %zu reps)\n",
              rows, dims, reps);
  std::printf("  %-8s %14s %14s %14s\n", "tier", "float_gbps",
              "float_scans_s", "int8_gbps");
  double checksum = 0.0;
  for (simd::Tier tier : {simd::Tier::kScalar, simd::Tier::kNeon,
                          simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::SetTier(tier) != tier) continue;  // host can't run this tier

    Stopwatch fwatch;
    for (size_t rep = 0; rep < reps; ++rep) {
      simd::DotBatch(query.data(), block.data(), rows, dims, out.data());
      checksum += out[rep % rows];
    }
    const double fsec = fwatch.ElapsedSeconds();
    const double fbytes =
        static_cast<double>(reps * rows * dims * sizeof(float));
    const double fgbps = fbytes / fsec / 1e9;
    const double fscans = static_cast<double>(reps) / fsec;

    Stopwatch iwatch;
    for (size_t rep = 0; rep < reps; ++rep) {
      int64_t acc = 0;
      const int8_t* row = qblock.data();
      for (size_t r = 0; r < rows; ++r, row += dims) {
        acc += simd::DotI8(q8.data(), row, dims);
      }
      checksum += static_cast<double>(acc & 0xff);
    }
    const double isec = iwatch.ElapsedSeconds();
    const double igbps =
        static_cast<double>(reps * rows * dims) / isec / 1e9;

    std::printf("  %-8s %14.2f %14.1f %14.2f\n", simd::TierName(tier),
                fgbps, fscans, igbps);
    const std::string prefix = std::string("kernel_") + simd::TierName(tier);
    report.Set(prefix + "_float_gbps", fgbps);
    report.Set(prefix + "_float_scans_per_sec", fscans);
    report.Set(prefix + "_int8_gbps", igbps);
  }
  simd::SetTier(before);
  report.Set("kernel_dispatch_tier", std::string(simd::TierName(before)));
  std::printf("  dispatch resolves to: %s   (checksum %.3f)\n\n",
              simd::TierName(before), checksum);
}

/// ISSUE 6 corpus sweep: flat-scan vs HNSW over identical vectors at
/// growing corpus sizes. ISSUE 10 measures each stage's ANN path twice —
/// float rows and the SQ8 mirror, toggled on one built graph — and gates
/// both on recall and bit-exact rerank parity. Returns false when a --smoke
/// gate fails.
bool RunSweep(const Args& args, BenchReport& report) {
  const size_t dims = args.sweep_dims;
  const size_t k = 10;
  const size_t nqueries = args.smoke ? 32 : 64;
  std::vector<size_t> sizes =
      args.smoke ? std::vector<size_t>{100000}
                 : std::vector<size_t>{10000, 100000, 1000000};
  std::erase_if(sizes, [&](size_t s) { return s > args.max_corpus; });
  if (sizes.empty()) sizes.push_back(args.max_corpus);

  search::VectorIndexOptions flat_opts;
  flat_opts.strategy = search::IndexStrategy::kFlat;
  // Serial scan: the baseline is the single-thread exact path, so the
  // QPS ratio is algorithmic, not a thread-count artifact.
  flat_opts.parallel_threshold = static_cast<size_t>(-1);
  search::VectorIndexOptions hnsw_opts;
  hnsw_opts.strategy = search::IndexStrategy::kHnsw;
  hnsw_opts.hnsw.M = 16;
  hnsw_opts.hnsw.ef_construction = args.smoke ? 64 : 128;
  // The full sweep's stream packs ~33k variants into each family cluster,
  // so the true top-10 sit in a very dense neighborhood; ef_search=320
  // holds recall@10 near 0.98 there (96 suffices at smoke density).
  hnsw_opts.hnsw.ef_search = args.smoke ? 64 : 320;
  hnsw_opts.recall_probe_interval = 0;  // the sweep measures recall itself
  search::VectorIndex flat(dims, flat_opts);
  search::VectorIndex hnsw(dims, hnsw_opts);

  // Corpus stream: the full PE render pipeline, one example at a time.
  dataset::DatasetConfig dcfg;
  dcfg.seed = 0xc0de5eedULL;
  const auto& families = dataset::Families();
  dcfg.variants_per_family =
      (sizes.back() + families.size() - 1) / families.size();
  dataset::PeStream stream(dcfg);
  embed::UnixcoderConfig ucfg;
  ucfg.dims = dims;
  embed::UnixcoderSim encoder(ucfg);
  std::vector<embed::Vector> centroids;
  centroids.reserve(families.size());
  for (const dataset::FamilySpec& fam : families) {
    centroids.push_back(encoder.EncodeText(fam.description));
  }

  // Graph-build helpers; smoke stays serial so the gates are deterministic.
  std::unique_ptr<ThreadPool> pool;
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (!args.smoke && std::min(args.threads, hw) > 1) {
    pool = std::make_unique<ThreadPool>(std::min(args.threads, hw) - 1);
  }

  std::printf("corpus sweep: HNSW (M=%zu efc=%zu efs=%zu overfetch=%.1f) vs "
              "flat scan, dims=%zu k=%zu\n",
              hnsw_opts.hnsw.M, hnsw_opts.hnsw.ef_construction,
              hnsw_opts.hnsw.ef_search, hnsw_opts.rerank_overfetch, dims, k);
  std::printf("  %-9s %10s %11s %11s %11s %9s %9s %8s %8s %9s\n", "rows",
              "build_ms", "flat_qps", "annf_qps", "annq_qps", "recall_f",
              "recall_q", "p50f_ms", "p50q_ms", "graph_mb");

  dataset::PeExample ex;
  size_t inserted = 0;
  bool gates_ok = true;
  double last_recall_f = 0.0, last_recall_q = 0.0, last_ratio = 0.0;
  double last_qps_f = 0.0, last_qps_q = 0.0, last_bytes_ratio = 0.0;
  bool parity_ok = true;
  for (size_t target : sizes) {
    flat.BeginBulk();
    hnsw.BeginBulk();
    while (inserted < target && stream.Next(&ex)) {
      embed::Vector v =
          ClusterPoint(centroids[static_cast<size_t>(ex.group)],
                       0x9e5eedULL ^ static_cast<uint64_t>(ex.id));
      flat.Upsert(ex.id, v);
      hnsw.Upsert(ex.id, v);
      ++inserted;
    }
    flat.EndBulk(nullptr);
    Stopwatch build_watch;
    hnsw.EndBulk(pool.get());
    const double build_ms = build_watch.ElapsedMillis();

    // Queries are fresh cluster samples from the families streamed so far
    // (the stream is family-major, so early stages cover fewer families).
    const size_t covered = std::min(
        families.size(),
        (inserted + dcfg.variants_per_family - 1) / dcfg.variants_per_family);
    Rng qrng(0x5a5a0000ULL ^ inserted);
    std::vector<embed::Vector> qs;
    qs.reserve(nqueries);
    for (size_t i = 0; i < nqueries; ++i) {
      qs.push_back(
          ClusterPoint(centroids[qrng.NextBelow(covered)], qrng.NextU64()));
    }

    // Exact ground truth doubles as the flat-QPS measurement.
    std::vector<std::vector<search::ScoredId>> truth(nqueries);
    Stopwatch flat_watch;
    for (size_t i = 0; i < nqueries; ++i) truth[i] = flat.TopK(qs[i], k);
    const double flat_qps =
        static_cast<double>(nqueries) / flat_watch.ElapsedSeconds();

    // One ANN measurement pass: reps x queries through hnsw.TopK, keeping
    // the first rep's results for the recall/parity checks. Run once with
    // the float rows and once with the SQ8 mirror toggled onto the same
    // graph — no rebuild between the two.
    const size_t reps = args.smoke ? 3 : 8;
    struct AnnOut {
      double qps = 0.0, p50 = 0.0, p95 = 0.0;
      std::vector<std::vector<search::ScoredId>> got;
    };
    auto run_ann = [&]() {
      AnnOut o;
      o.got.resize(nqueries);
      std::vector<double> lat;
      lat.reserve(reps * nqueries);
      Stopwatch ann_watch;
      for (size_t rep = 0; rep < reps; ++rep) {
        for (size_t i = 0; i < nqueries; ++i) {
          Stopwatch one;
          std::vector<search::ScoredId> res = hnsw.TopK(qs[i], k);
          lat.push_back(one.ElapsedMillis());
          if (rep == 0) o.got[i] = std::move(res);
        }
      }
      o.qps = static_cast<double>(reps * nqueries) /
              ann_watch.ElapsedSeconds();
      std::sort(lat.begin(), lat.end());
      o.p50 = Percentile(lat, 0.50);
      o.p95 = Percentile(lat, 0.95);
      return o;
    };

    // recall@10 + the exact-rerank parity gate: every id an ANN path
    // returns that the exact top-k also contains must carry a bit-identical
    // score (all paths rerank through the same dispatched kernel over the
    // same rows — the SQ8 mirror only proposes candidates).
    auto score_results =
        [&](const std::vector<std::vector<search::ScoredId>>& got,
            const char* tag) {
      double recall_sum = 0.0;
      for (size_t i = 0; i < nqueries; ++i) {
        std::unordered_map<int64_t, float> want;
        want.reserve(truth[i].size());
        for (const search::ScoredId& t : truth[i]) want.emplace(t.id, t.score);
        size_t hits = 0;
        for (const search::ScoredId& g : got[i]) {
          auto it = want.find(g.id);
          if (it == want.end()) continue;
          ++hits;
          if (std::memcmp(&it->second, &g.score, sizeof(float)) != 0) {
            std::fprintf(stderr,
                         "sweep parity failure (%s): id=%lld ann score %.9g "
                         "!= exact score %.9g\n",
                         tag, static_cast<long long>(g.id), g.score,
                         it->second);
            parity_ok = false;
          }
        }
        recall_sum += truth[i].empty()
                          ? 1.0
                          : static_cast<double>(hits) /
                                static_cast<double>(truth[i].size());
      }
      return recall_sum / static_cast<double>(nqueries);
    };

    AnnOut ann_f = run_ann();  // float traversal (quantize off)
    hnsw.SetQuantize(true);
    AnnOut ann_q = run_ann();  // SQ8 traversal, same graph
    const auto hstats = hnsw.stats();  // snapshot while the mirror is live
    hnsw.SetQuantize(false);  // next stage's inserts/measures start float

    const double recall_f = score_results(ann_f.got, "float");
    const double recall_q = score_results(ann_q.got, "sq8");
    const auto fstats = flat.stats();
    const double ratio = ann_f.qps / flat_qps;
    // Size-based storage ratio (codes + scale/offset vs float32 rows);
    // capacity-based stats would fold allocator growth slack into the gate.
    const double bytes_ratio =
        static_cast<double>(dims + 2 * sizeof(float)) /
        static_cast<double>(dims * sizeof(float));
    last_recall_f = recall_f;
    last_recall_q = recall_q;
    last_ratio = ratio;
    last_qps_f = ann_f.qps;
    last_qps_q = ann_q.qps;
    last_bytes_ratio = bytes_ratio;

    std::printf("  %-9zu %10.1f %11.1f %11.1f %11.1f %9.4f %9.4f %8.4f "
                "%8.4f %9.2f\n",
                inserted, build_ms, flat_qps, ann_f.qps, ann_q.qps, recall_f,
                recall_q, ann_f.p50, ann_q.p50,
                static_cast<double>(hstats.graph_bytes) / (1024.0 * 1024.0));

    Value& row = report.AddRow();
    row["corpus"] = static_cast<int64_t>(inserted);
    row["dims"] = static_cast<int64_t>(dims);
    row["graph_build_ms"] = build_ms;
    row["flat_qps"] = flat_qps;
    row["ann_qps"] = ann_f.qps;
    row["ann_quant_qps"] = ann_q.qps;
    row["ann_vs_flat_qps_ratio"] = ratio;
    row["recall_at_10"] = recall_f;
    row["quant_recall_at_10"] = recall_q;
    row["ann_p50_ms"] = ann_f.p50;
    row["ann_p95_ms"] = ann_f.p95;
    row["ann_quant_p50_ms"] = ann_q.p50;
    row["ann_quant_p95_ms"] = ann_q.p95;
    row["graph_bytes"] = static_cast<int64_t>(hstats.graph_bytes);
    row["rows_bytes"] = static_cast<int64_t>(fstats.bytes);
    row["quant_bytes"] = static_cast<int64_t>(hstats.quant_bytes);
    row["quant_vs_float_row_bytes"] = bytes_ratio;
  }
  std::printf("\n");
  report.Set("sweep_recall_at_10", last_recall_f);
  report.Set("sweep_quant_recall_at_10", last_recall_q);
  report.Set("sweep_ann_vs_flat_qps_ratio", last_ratio);
  report.Set("sweep_quant_vs_float_qps_ratio",
             last_qps_f > 0.0 ? last_qps_q / last_qps_f : 0.0);
  report.Set("sweep_quant_vs_float_row_bytes", last_bytes_ratio);

  if (args.smoke) {
    if (!parity_ok) gates_ok = false;
    if (last_recall_f < 0.95) {
      std::fprintf(stderr, "sweep gate failure: recall@10 %.4f < 0.95\n",
                   last_recall_f);
      gates_ok = false;
    }
    if (last_recall_q < 0.95) {
      std::fprintf(stderr,
                   "sweep gate failure: quantized recall@10 %.4f < 0.95\n",
                   last_recall_q);
      gates_ok = false;
    }
    if (last_ratio < 10.0) {
      std::fprintf(stderr,
                   "sweep gate failure: ann/flat QPS ratio %.2fx < 10x\n",
                   last_ratio);
      gates_ok = false;
    }
  }
  return gates_ok;
}

int RunBench(const Args& args) {
  BenchReport report("search");
  std::printf("bench_search: docs=%zu dims=%zu queries=%zu threads=%zu k=%zu"
              " hw_threads=%u%s\n\n",
              args.docs, args.dims, args.queries, args.threads, args.k,
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke)" : "");

  Rng rng(0xbe7c5ea7c4ULL);
  std::unordered_map<int64_t, embed::Vector> legacy_docs;
  search::VectorIndexOptions serial_opts;
  serial_opts.parallel_threshold = static_cast<size_t>(-1);  // never shard
  search::VectorIndex flat(args.dims, serial_opts);
  search::VectorIndexOptions sharded_opts;
  sharded_opts.parallel_threshold = 1;
  sharded_opts.max_threads = args.threads;
  search::VectorIndex sharded(args.dims, sharded_opts);
  for (size_t i = 0; i < args.docs; ++i) {
    embed::Vector v = RandomVector(rng, args.dims);
    int64_t id = static_cast<int64_t>(i + 1);
    flat.Upsert(id, v);
    sharded.Upsert(id, v);
    legacy_docs.emplace(id, std::move(v));
  }
  std::vector<embed::Vector> queries;
  queries.reserve(args.queries);
  for (size_t i = 0; i < args.queries; ++i) {
    queries.push_back(RandomVector(rng, args.dims));
  }

  // Correctness gate first: the flat path must agree with the legacy path.
  for (const embed::Vector& q : queries) {
    std::vector<ScoredRef> want = LegacyBruteForce(legacy_docs, q, args.k);
    std::vector<search::ScoredId> got = flat.TopK(q, args.k);
    if (got.size() != want.size()) {
      std::fprintf(stderr, "parity failure: size %zu != %zu\n", got.size(),
                   want.size());
      return 1;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].id != want[i].id ||
          std::abs(got[i].score - want[i].score) > 1e-4f) {
        std::fprintf(stderr,
                     "parity failure at rank %zu: got id=%lld score=%f, "
                     "want id=%lld score=%f\n",
                     i, static_cast<long long>(got[i].id), got[i].score,
                     static_cast<long long>(want[i].id), want[i].score);
        return 1;
      }
    }
  }
  std::printf("parity: flat top-k matches legacy brute force on all %zu "
              "queries\n\n", queries.size());

  double checksum = 0.0;  // defeats dead-code elimination

  // --- single-thread QPS, legacy vs flat ---
  Stopwatch legacy_watch;
  for (const embed::Vector& q : queries) {
    checksum += LegacyBruteForce(legacy_docs, q, args.k).front().score;
  }
  double legacy_s = legacy_watch.ElapsedSeconds();
  double legacy_qps = static_cast<double>(queries.size()) / legacy_s;

  const size_t flat_reps = args.smoke ? 2 : 10;
  Stopwatch flat_watch;
  for (size_t rep = 0; rep < flat_reps; ++rep) {
    for (const embed::Vector& q : queries) {
      checksum += flat.TopK(q, args.k).front().score;
    }
  }
  double flat_s = flat_watch.ElapsedSeconds();
  double flat_qps =
      static_cast<double>(queries.size() * flat_reps) / flat_s;

  Stopwatch sharded_watch;
  for (size_t rep = 0; rep < flat_reps; ++rep) {
    for (const embed::Vector& q : queries) {
      checksum += sharded.TopK(q, args.k).front().score;
    }
  }
  double sharded_s = sharded_watch.ElapsedSeconds();
  double sharded_qps =
      static_cast<double>(queries.size() * flat_reps) / sharded_s;

  std::printf("single-thread QPS (top-%zu over %zu docs x %zu dims)\n",
              args.k, args.docs, args.dims);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n",
              "legacy map+Cosine+full-sort", legacy_qps,
              1000.0 / legacy_qps);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n", "flat SoA index (1 thread)",
              flat_qps, 1000.0 / flat_qps);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n", "flat SoA index (sharded)",
              sharded_qps, 1000.0 / sharded_qps);
  std::printf("  speedup (flat 1-thread / legacy): %.2fx\n\n",
              flat_qps / legacy_qps);

  // --- concurrent readers: shared lock (new server path) vs exclusive
  // (old server path). Each reader runs the whole query set; per-query
  // latency is recorded for p50/p95. ---
  auto run_concurrent = [&](bool exclusive) {
    std::shared_mutex smu;
    std::mutex xmu;
    std::vector<std::vector<double>> lat(args.threads);
    const size_t reps = args.smoke ? 1 : 4;
    Stopwatch watch;
    std::vector<std::thread> readers;
    readers.reserve(args.threads);
    for (size_t t = 0; t < args.threads; ++t) {
      readers.emplace_back([&, t] {
        lat[t].reserve(reps * queries.size());
        double local = 0.0;
        for (size_t rep = 0; rep < reps; ++rep) {
          for (const embed::Vector& q : queries) {
            Stopwatch one;
            if (exclusive) {
              std::scoped_lock lock(xmu);
              local += flat.TopK(q, args.k).front().score;
            } else {
              std::shared_lock lock(smu);
              local += flat.TopK(q, args.k).front().score;
            }
            lat[t].push_back(one.ElapsedMillis());
          }
        }
        static std::mutex sink_mu;
        std::scoped_lock sink(sink_mu);
        checksum += local;
      });
    }
    for (std::thread& r : readers) r.join();
    double wall_s = watch.ElapsedSeconds();
    std::vector<double> all;
    for (const auto& per_thread : lat) {
      all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all.begin(), all.end());
    struct Out { double qps, p50, p95; };
    return Out{static_cast<double>(all.size()) / wall_s,
               Percentile(all, 0.50), Percentile(all, 0.95)};
  };

  auto shared_out = run_concurrent(/*exclusive=*/false);
  auto exclusive_out = run_concurrent(/*exclusive=*/true);
  std::printf("%zu concurrent readers (flat index, per-query latency)\n",
              args.threads);
  std::printf("  %-34s %10.1f qps  p50=%.3f ms  p95=%.3f ms\n",
              "shared_mutex (new read path)", shared_out.qps, shared_out.p50,
              shared_out.p95);
  std::printf("  %-34s %10.1f qps  p50=%.3f ms  p95=%.3f ms\n",
              "exclusive mutex (old read path)", exclusive_out.qps,
              exclusive_out.p50, exclusive_out.p95);
  std::printf("  reader scaling vs single thread: %.2fx "
              "(hardware limit: %u core(s))\n\n",
              shared_out.qps / flat_qps, std::thread::hardware_concurrency());

  // --- query-embedding cache: repeated interactive queries skip the
  // encoder entirely. ---
  embed::UnixcoderSim encoder;
  search::QueryEmbeddingCache cache(64);
  const std::string text = "stream of prime numbers from a kafka topic";
  const size_t lookups = args.smoke ? 20 : 200;
  Stopwatch encode_watch;
  for (size_t i = 0; i < lookups; ++i) {
    checksum += encoder.EncodeText(text)[0];
  }
  double encode_ms = encode_watch.ElapsedMillis();
  Stopwatch cached_watch;
  for (size_t i = 0; i < lookups; ++i) {
    checksum += cache.GetOrCompute("unixcoder", text,
                                   [&] { return encoder.EncodeText(text); })[0];
  }
  double cached_ms = cached_watch.ElapsedMillis();
  auto cache_stats = cache.stats();
  std::printf("query-embedding cache (%zu lookups of one query)\n", lookups);
  std::printf("  %-34s %10.3f ms total\n", "encode every time", encode_ms);
  std::printf("  %-34s %10.3f ms total  (hits=%llu misses=%llu)\n",
              "LRU cache", cached_ms,
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));

  std::printf("\nchecksum %.6f\n\n", checksum);

  RunKernels(args, report);
  const bool sweep_ok = RunSweep(args, report);

  report.Set("docs", static_cast<int64_t>(args.docs));
  report.Set("dims", static_cast<int64_t>(args.dims));
  report.Set("threads", static_cast<int64_t>(args.threads));
  report.Set("legacy_qps", legacy_qps);
  report.Set("flat_qps", flat_qps);
  report.Set("sharded_qps", sharded_qps);
  report.Set("flat_vs_legacy_speedup", flat_qps / legacy_qps);
  report.Set("shared_lock_qps", shared_out.qps);
  report.Set("shared_lock_p50_ms", shared_out.p50);
  report.Set("shared_lock_p95_ms", shared_out.p95);
  report.Set("exclusive_lock_qps", exclusive_out.qps);
  report.Set("exclusive_lock_p50_ms", exclusive_out.p50);
  report.Set("exclusive_lock_p95_ms", exclusive_out.p95);
  report.Set("encode_every_time_ms", encode_ms);
  report.Set("lru_cache_ms", cached_ms);
  report.Write();
  return sweep_ok ? 0 : 1;
}

}  // namespace
}  // namespace laminar::bench

int main(int argc, char** argv) {
  return laminar::bench::RunBench(laminar::bench::ParseArgs(argc, argv));
}
