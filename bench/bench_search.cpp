// bench_search — before/after measurement of the search query path rebuild
// (ISSUE 2): legacy brute-force scan (unordered_map of embed::Vector rows,
// per-pair embed::Cosine with both norms recomputed, full sort for top-k)
// versus the flat SoA VectorIndex (normalize-at-insert, unrolled dot kernel,
// bounded top-k heap, optional sharded scan), plus concurrent-reader scaling
// in the shape of the server's shared-lock read path and a query-embedding
// cache demonstration.
//
// The second half is the ISSUE 6 corpus sweep: stream-generate PEs with
// dataset::PeStream (1M+ in the full run, never holding the corpus), give
// each a family-clustered synthetic embedding (the family description's
// encoded centroid plus per-PE deterministic noise), and grow a flat-scan
// index and an HNSW index over identical vectors through 10k -> 100k -> 1M
// rows, reporting QPS, recall@10 vs the exact scan, p50/p95 ANN latency and
// index/graph memory per stage into BENCH_search.json.
//
// Usage:
//   bench_search [--docs N] [--dims N] [--queries N] [--threads N] [--k N]
//                [--smoke]
// --smoke shrinks everything to a small corpus and asserts correctness
// (flat results == legacy results) plus the ANN gates — recall@10 >= 0.95,
// ANN scores bit-identical to the exact scan on returned ids, and >= 10x
// ANN-over-flat QPS — with fixed seeds and a serial graph build, so the
// gates are deterministic rather than perf-flaky.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "common/hashing.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "dataset/families.hpp"
#include "dataset/generator.hpp"
#include "embed/embedding.hpp"
#include "embed/unixcoder_sim.hpp"
#include "search/query_cache.hpp"
#include "search/vector_index.hpp"

namespace laminar::bench {
namespace {

struct Args {
  size_t docs = 10000;
  size_t dims = 256;
  size_t queries = 64;
  size_t threads = 8;
  size_t k = 10;
  bool smoke = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](size_t fallback) -> size_t {
      return i + 1 < argc ? static_cast<size_t>(std::atoll(argv[++i]))
                          : fallback;
    };
    if (std::strcmp(argv[i], "--docs") == 0) args.docs = next(args.docs);
    else if (std::strcmp(argv[i], "--dims") == 0) args.dims = next(args.dims);
    else if (std::strcmp(argv[i], "--queries") == 0)
      args.queries = next(args.queries);
    else if (std::strcmp(argv[i], "--threads") == 0)
      args.threads = next(args.threads);
    else if (std::strcmp(argv[i], "--k") == 0) args.k = next(args.k);
    else if (std::strcmp(argv[i], "--smoke") == 0) args.smoke = true;
  }
  if (args.smoke) {
    args.docs = 400;
    args.dims = 64;
    args.queries = 12;
    args.threads = 2;
    args.k = 5;
  }
  return args;
}

embed::Vector RandomVector(Rng& rng, size_t dims) {
  embed::Vector v(dims);
  for (float& x : v) {
    x = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  return v;
}

struct ScoredRef {
  int64_t id;
  float score;
};

/// The retained legacy path, exactly as SearchService::RankByCosine ran
/// before this rebuild: hash-map iteration, embed::Cosine per pair (both
/// norms recomputed every time), full sort, truncate.
std::vector<ScoredRef> LegacyBruteForce(
    const std::unordered_map<int64_t, embed::Vector>& docs,
    const embed::Vector& query, size_t k) {
  std::vector<ScoredRef> hits;
  hits.reserve(docs.size());
  for (const auto& [id, vec] : docs) {
    hits.push_back({id, embed::Cosine(query, vec)});
  }
  std::sort(hits.begin(), hits.end(), [](const ScoredRef& a, const ScoredRef& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

double Percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

/// A point of family `centroid` plus deterministic per-dimension noise of
/// ~unit norm, derived only from `salt` — the PE-id-seeded synthetic
/// embedding the corpus sweep uses. (Real per-PE encodes would collapse:
/// every variant of a family shares one description, so 33k rows would tie
/// exactly and recall@10 would be meaningless. The centroid+noise mixture
/// keeps the family cluster structure while making per-row ranking
/// well-posed.) Not normalized; VectorIndex normalizes at insert.
embed::Vector ClusterPoint(const embed::Vector& centroid, uint64_t salt) {
  Rng rng(hashing::SplitMix64(salt));
  const size_t dims = centroid.size();
  const float amp = std::sqrt(3.0f / static_cast<float>(dims));
  embed::Vector v(dims);
  for (size_t i = 0; i < dims; ++i) {
    v[i] = centroid[i] +
           amp * static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  return v;
}

/// ISSUE 6 corpus sweep: flat-scan vs HNSW over identical vectors at
/// growing corpus sizes. Returns false when a --smoke gate fails.
bool RunSweep(const Args& args, BenchReport& report) {
  const size_t dims = 64;
  const size_t k = 10;
  const size_t nqueries = args.smoke ? 32 : 64;
  const std::vector<size_t> sizes =
      args.smoke ? std::vector<size_t>{100000}
                 : std::vector<size_t>{10000, 100000, 1000000};

  search::VectorIndexOptions flat_opts;
  flat_opts.strategy = search::IndexStrategy::kFlat;
  // Serial scan: the baseline is the single-thread exact path, so the
  // QPS ratio is algorithmic, not a thread-count artifact.
  flat_opts.parallel_threshold = static_cast<size_t>(-1);
  search::VectorIndexOptions hnsw_opts;
  hnsw_opts.strategy = search::IndexStrategy::kHnsw;
  hnsw_opts.hnsw.M = 16;
  hnsw_opts.hnsw.ef_construction = args.smoke ? 64 : 128;
  // The full sweep's stream packs ~33k variants into each family cluster,
  // so the true top-10 sit in a very dense neighborhood; ef_search=320
  // holds recall@10 near 0.98 there (96 suffices at smoke density).
  hnsw_opts.hnsw.ef_search = args.smoke ? 64 : 320;
  hnsw_opts.recall_probe_interval = 0;  // the sweep measures recall itself
  search::VectorIndex flat(dims, flat_opts);
  search::VectorIndex hnsw(dims, hnsw_opts);

  // Corpus stream: the full PE render pipeline, one example at a time.
  dataset::DatasetConfig dcfg;
  dcfg.seed = 0xc0de5eedULL;
  const auto& families = dataset::Families();
  dcfg.variants_per_family =
      (sizes.back() + families.size() - 1) / families.size();
  dataset::PeStream stream(dcfg);
  embed::UnixcoderConfig ucfg;
  ucfg.dims = dims;
  embed::UnixcoderSim encoder(ucfg);
  std::vector<embed::Vector> centroids;
  centroids.reserve(families.size());
  for (const dataset::FamilySpec& fam : families) {
    centroids.push_back(encoder.EncodeText(fam.description));
  }

  // Graph-build helpers; smoke stays serial so the gates are deterministic.
  std::unique_ptr<ThreadPool> pool;
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  if (!args.smoke && std::min(args.threads, hw) > 1) {
    pool = std::make_unique<ThreadPool>(std::min(args.threads, hw) - 1);
  }

  std::printf("corpus sweep: HNSW (M=%zu efc=%zu efs=%zu) vs flat scan, "
              "dims=%zu k=%zu\n",
              hnsw_opts.hnsw.M, hnsw_opts.hnsw.ef_construction,
              hnsw_opts.hnsw.ef_search, dims, k);
  std::printf("  %-9s %10s %12s %12s %7s %10s %9s %9s %10s\n", "rows",
              "build_ms", "flat_qps", "ann_qps", "ratio", "recall@10",
              "p50_ms", "p95_ms", "graph_mb");

  dataset::PeExample ex;
  size_t inserted = 0;
  bool gates_ok = true;
  double last_recall = 0.0, last_ratio = 0.0;
  bool parity_ok = true;
  for (size_t target : sizes) {
    flat.BeginBulk();
    hnsw.BeginBulk();
    while (inserted < target && stream.Next(&ex)) {
      embed::Vector v =
          ClusterPoint(centroids[static_cast<size_t>(ex.group)],
                       0x9e5eedULL ^ static_cast<uint64_t>(ex.id));
      flat.Upsert(ex.id, v);
      hnsw.Upsert(ex.id, v);
      ++inserted;
    }
    flat.EndBulk(nullptr);
    Stopwatch build_watch;
    hnsw.EndBulk(pool.get());
    const double build_ms = build_watch.ElapsedMillis();

    // Queries are fresh cluster samples from the families streamed so far
    // (the stream is family-major, so early stages cover fewer families).
    const size_t covered = std::min(
        families.size(),
        (inserted + dcfg.variants_per_family - 1) / dcfg.variants_per_family);
    Rng qrng(0x5a5a0000ULL ^ inserted);
    std::vector<embed::Vector> qs;
    qs.reserve(nqueries);
    for (size_t i = 0; i < nqueries; ++i) {
      qs.push_back(
          ClusterPoint(centroids[qrng.NextBelow(covered)], qrng.NextU64()));
    }

    // Exact ground truth doubles as the flat-QPS measurement.
    std::vector<std::vector<search::ScoredId>> truth(nqueries);
    Stopwatch flat_watch;
    for (size_t i = 0; i < nqueries; ++i) truth[i] = flat.TopK(qs[i], k);
    const double flat_qps =
        static_cast<double>(nqueries) / flat_watch.ElapsedSeconds();

    const size_t reps = args.smoke ? 3 : 8;
    std::vector<std::vector<search::ScoredId>> got(nqueries);
    std::vector<double> lat;
    lat.reserve(reps * nqueries);
    Stopwatch ann_watch;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (size_t i = 0; i < nqueries; ++i) {
        Stopwatch one;
        std::vector<search::ScoredId> res = hnsw.TopK(qs[i], k);
        lat.push_back(one.ElapsedMillis());
        if (rep == 0) got[i] = std::move(res);
      }
    }
    const double ann_qps = static_cast<double>(reps * nqueries) /
                           ann_watch.ElapsedSeconds();

    // recall@10 + the exact-rerank parity gate: every id the ANN path
    // returns that the exact top-k also contains must carry a bit-identical
    // score (both paths run the same kernel over the same row).
    double recall_sum = 0.0;
    for (size_t i = 0; i < nqueries; ++i) {
      std::unordered_map<int64_t, float> want;
      want.reserve(truth[i].size());
      for (const search::ScoredId& t : truth[i]) want.emplace(t.id, t.score);
      size_t hits = 0;
      for (const search::ScoredId& g : got[i]) {
        auto it = want.find(g.id);
        if (it == want.end()) continue;
        ++hits;
        if (std::memcmp(&it->second, &g.score, sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "sweep parity failure: id=%lld ann score %.9g != "
                       "exact score %.9g\n",
                       static_cast<long long>(g.id), g.score, it->second);
          parity_ok = false;
        }
      }
      recall_sum += truth[i].empty()
                        ? 1.0
                        : static_cast<double>(hits) /
                              static_cast<double>(truth[i].size());
    }
    const double recall = recall_sum / static_cast<double>(nqueries);
    std::sort(lat.begin(), lat.end());
    const double p50 = Percentile(lat, 0.50);
    const double p95 = Percentile(lat, 0.95);
    const auto hstats = hnsw.stats();
    const auto fstats = flat.stats();
    const double ratio = ann_qps / flat_qps;
    last_recall = recall;
    last_ratio = ratio;

    std::printf("  %-9zu %10.1f %12.1f %12.1f %6.1fx %10.4f %9.4f %9.4f "
                "%10.2f\n",
                inserted, build_ms, flat_qps, ann_qps, ratio, recall, p50,
                p95,
                static_cast<double>(hstats.graph_bytes) / (1024.0 * 1024.0));

    Value& row = report.AddRow();
    row["corpus"] = static_cast<int64_t>(inserted);
    row["dims"] = static_cast<int64_t>(dims);
    row["graph_build_ms"] = build_ms;
    row["flat_qps"] = flat_qps;
    row["ann_qps"] = ann_qps;
    row["ann_vs_flat_qps_ratio"] = ratio;
    row["recall_at_10"] = recall;
    row["ann_p50_ms"] = p50;
    row["ann_p95_ms"] = p95;
    row["graph_bytes"] = static_cast<int64_t>(hstats.graph_bytes);
    row["rows_bytes"] = static_cast<int64_t>(fstats.bytes);
  }
  std::printf("\n");
  report.Set("sweep_recall_at_10", last_recall);
  report.Set("sweep_ann_vs_flat_qps_ratio", last_ratio);

  if (args.smoke) {
    if (!parity_ok) gates_ok = false;
    if (last_recall < 0.95) {
      std::fprintf(stderr, "sweep gate failure: recall@10 %.4f < 0.95\n",
                   last_recall);
      gates_ok = false;
    }
    if (last_ratio < 10.0) {
      std::fprintf(stderr,
                   "sweep gate failure: ann/flat QPS ratio %.2fx < 10x\n",
                   last_ratio);
      gates_ok = false;
    }
  }
  return gates_ok;
}

int RunBench(const Args& args) {
  BenchReport report("search");
  std::printf("bench_search: docs=%zu dims=%zu queries=%zu threads=%zu k=%zu"
              " hw_threads=%u%s\n\n",
              args.docs, args.dims, args.queries, args.threads, args.k,
              std::thread::hardware_concurrency(),
              args.smoke ? " (smoke)" : "");

  Rng rng(0xbe7c5ea7c4ULL);
  std::unordered_map<int64_t, embed::Vector> legacy_docs;
  search::VectorIndexOptions serial_opts;
  serial_opts.parallel_threshold = static_cast<size_t>(-1);  // never shard
  search::VectorIndex flat(args.dims, serial_opts);
  search::VectorIndexOptions sharded_opts;
  sharded_opts.parallel_threshold = 1;
  sharded_opts.max_threads = args.threads;
  search::VectorIndex sharded(args.dims, sharded_opts);
  for (size_t i = 0; i < args.docs; ++i) {
    embed::Vector v = RandomVector(rng, args.dims);
    int64_t id = static_cast<int64_t>(i + 1);
    flat.Upsert(id, v);
    sharded.Upsert(id, v);
    legacy_docs.emplace(id, std::move(v));
  }
  std::vector<embed::Vector> queries;
  queries.reserve(args.queries);
  for (size_t i = 0; i < args.queries; ++i) {
    queries.push_back(RandomVector(rng, args.dims));
  }

  // Correctness gate first: the flat path must agree with the legacy path.
  for (const embed::Vector& q : queries) {
    std::vector<ScoredRef> want = LegacyBruteForce(legacy_docs, q, args.k);
    std::vector<search::ScoredId> got = flat.TopK(q, args.k);
    if (got.size() != want.size()) {
      std::fprintf(stderr, "parity failure: size %zu != %zu\n", got.size(),
                   want.size());
      return 1;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].id != want[i].id ||
          std::abs(got[i].score - want[i].score) > 1e-4f) {
        std::fprintf(stderr,
                     "parity failure at rank %zu: got id=%lld score=%f, "
                     "want id=%lld score=%f\n",
                     i, static_cast<long long>(got[i].id), got[i].score,
                     static_cast<long long>(want[i].id), want[i].score);
        return 1;
      }
    }
  }
  std::printf("parity: flat top-k matches legacy brute force on all %zu "
              "queries\n\n", queries.size());

  double checksum = 0.0;  // defeats dead-code elimination

  // --- single-thread QPS, legacy vs flat ---
  Stopwatch legacy_watch;
  for (const embed::Vector& q : queries) {
    checksum += LegacyBruteForce(legacy_docs, q, args.k).front().score;
  }
  double legacy_s = legacy_watch.ElapsedSeconds();
  double legacy_qps = static_cast<double>(queries.size()) / legacy_s;

  const size_t flat_reps = args.smoke ? 2 : 10;
  Stopwatch flat_watch;
  for (size_t rep = 0; rep < flat_reps; ++rep) {
    for (const embed::Vector& q : queries) {
      checksum += flat.TopK(q, args.k).front().score;
    }
  }
  double flat_s = flat_watch.ElapsedSeconds();
  double flat_qps =
      static_cast<double>(queries.size() * flat_reps) / flat_s;

  Stopwatch sharded_watch;
  for (size_t rep = 0; rep < flat_reps; ++rep) {
    for (const embed::Vector& q : queries) {
      checksum += sharded.TopK(q, args.k).front().score;
    }
  }
  double sharded_s = sharded_watch.ElapsedSeconds();
  double sharded_qps =
      static_cast<double>(queries.size() * flat_reps) / sharded_s;

  std::printf("single-thread QPS (top-%zu over %zu docs x %zu dims)\n",
              args.k, args.docs, args.dims);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n",
              "legacy map+Cosine+full-sort", legacy_qps,
              1000.0 / legacy_qps);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n", "flat SoA index (1 thread)",
              flat_qps, 1000.0 / flat_qps);
  std::printf("  %-34s %10.1f qps  %8.3f ms/query\n", "flat SoA index (sharded)",
              sharded_qps, 1000.0 / sharded_qps);
  std::printf("  speedup (flat 1-thread / legacy): %.2fx\n\n",
              flat_qps / legacy_qps);

  // --- concurrent readers: shared lock (new server path) vs exclusive
  // (old server path). Each reader runs the whole query set; per-query
  // latency is recorded for p50/p95. ---
  auto run_concurrent = [&](bool exclusive) {
    std::shared_mutex smu;
    std::mutex xmu;
    std::vector<std::vector<double>> lat(args.threads);
    const size_t reps = args.smoke ? 1 : 4;
    Stopwatch watch;
    std::vector<std::thread> readers;
    readers.reserve(args.threads);
    for (size_t t = 0; t < args.threads; ++t) {
      readers.emplace_back([&, t] {
        lat[t].reserve(reps * queries.size());
        double local = 0.0;
        for (size_t rep = 0; rep < reps; ++rep) {
          for (const embed::Vector& q : queries) {
            Stopwatch one;
            if (exclusive) {
              std::scoped_lock lock(xmu);
              local += flat.TopK(q, args.k).front().score;
            } else {
              std::shared_lock lock(smu);
              local += flat.TopK(q, args.k).front().score;
            }
            lat[t].push_back(one.ElapsedMillis());
          }
        }
        static std::mutex sink_mu;
        std::scoped_lock sink(sink_mu);
        checksum += local;
      });
    }
    for (std::thread& r : readers) r.join();
    double wall_s = watch.ElapsedSeconds();
    std::vector<double> all;
    for (const auto& per_thread : lat) {
      all.insert(all.end(), per_thread.begin(), per_thread.end());
    }
    std::sort(all.begin(), all.end());
    struct Out { double qps, p50, p95; };
    return Out{static_cast<double>(all.size()) / wall_s,
               Percentile(all, 0.50), Percentile(all, 0.95)};
  };

  auto shared_out = run_concurrent(/*exclusive=*/false);
  auto exclusive_out = run_concurrent(/*exclusive=*/true);
  std::printf("%zu concurrent readers (flat index, per-query latency)\n",
              args.threads);
  std::printf("  %-34s %10.1f qps  p50=%.3f ms  p95=%.3f ms\n",
              "shared_mutex (new read path)", shared_out.qps, shared_out.p50,
              shared_out.p95);
  std::printf("  %-34s %10.1f qps  p50=%.3f ms  p95=%.3f ms\n",
              "exclusive mutex (old read path)", exclusive_out.qps,
              exclusive_out.p50, exclusive_out.p95);
  std::printf("  reader scaling vs single thread: %.2fx "
              "(hardware limit: %u core(s))\n\n",
              shared_out.qps / flat_qps, std::thread::hardware_concurrency());

  // --- query-embedding cache: repeated interactive queries skip the
  // encoder entirely. ---
  embed::UnixcoderSim encoder;
  search::QueryEmbeddingCache cache(64);
  const std::string text = "stream of prime numbers from a kafka topic";
  const size_t lookups = args.smoke ? 20 : 200;
  Stopwatch encode_watch;
  for (size_t i = 0; i < lookups; ++i) {
    checksum += encoder.EncodeText(text)[0];
  }
  double encode_ms = encode_watch.ElapsedMillis();
  Stopwatch cached_watch;
  for (size_t i = 0; i < lookups; ++i) {
    checksum += cache.GetOrCompute("unixcoder", text,
                                   [&] { return encoder.EncodeText(text); })[0];
  }
  double cached_ms = cached_watch.ElapsedMillis();
  auto cache_stats = cache.stats();
  std::printf("query-embedding cache (%zu lookups of one query)\n", lookups);
  std::printf("  %-34s %10.3f ms total\n", "encode every time", encode_ms);
  std::printf("  %-34s %10.3f ms total  (hits=%llu misses=%llu)\n",
              "LRU cache", cached_ms,
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses));

  std::printf("\nchecksum %.6f\n\n", checksum);

  const bool sweep_ok = RunSweep(args, report);

  report.Set("docs", static_cast<int64_t>(args.docs));
  report.Set("dims", static_cast<int64_t>(args.dims));
  report.Set("threads", static_cast<int64_t>(args.threads));
  report.Set("legacy_qps", legacy_qps);
  report.Set("flat_qps", flat_qps);
  report.Set("sharded_qps", sharded_qps);
  report.Set("flat_vs_legacy_speedup", flat_qps / legacy_qps);
  report.Set("shared_lock_qps", shared_out.qps);
  report.Set("shared_lock_p50_ms", shared_out.p50);
  report.Set("shared_lock_p95_ms", shared_out.p95);
  report.Set("exclusive_lock_qps", exclusive_out.qps);
  report.Set("exclusive_lock_p50_ms", exclusive_out.p50);
  report.Set("exclusive_lock_p95_ms", exclusive_out.p95);
  report.Set("encode_every_time_ms", encode_ms);
  report.Set("lru_cache_ms", cached_ms);
  report.Write();
  return sweep_ok ? 0 : 1;
}

}  // namespace
}  // namespace laminar::bench

int main(int argc, char** argv) {
  return laminar::bench::RunBench(laminar::bench::ParseArgs(argc, argv));
}
