// Transport bench (ISSUE 7): the same Laminar server driven over the two
// ByteStream transports — in-memory duplex pipes (the deterministic test
// default) and real TCP loopback sockets through the epoll listener — on a
// 90/10 semantic-search/register mix and a streamed /execute workflow.
//
// Headline numbers: QPS and p50/p95/p99 per transport on the mixed load,
// protocol bytes/frame, and first-line vs total latency for the streamed
// run (incremental delivery over TCP is an acceptance criterion).
//
// --smoke runs a reduced load and turns the parity checks into gates:
// identical client-visible results over both transports, incremental
// streamed chunks over TCP, and TCP-loopback QPS within a loose factor of
// in-memory (the committed BENCH_transport.json carries the real ratio).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "client/connect.hpp"
#include "common/json.hpp"

using namespace laminar;

namespace {

Value StreamSpec(int64_t burn_iters) {
  const char* templ = R"({
    "name": "stream_wf",
    "pes": [
      {"name": "Producer", "type": "NumberProducer",
       "params": {"seed": 5, "lo": 1, "hi": 100}},
      {"name": "Burn", "type": "CpuBurn", "params": {"iters": %lld}},
      {"name": "Echo", "type": "EchoSink", "params": {}}
    ],
    "edges": [
      {"from": "Producer", "to": "Burn"},
      {"from": "Burn", "to": "Echo"}
    ]
  })";
  char buf[1024];
  std::snprintf(buf, sizeof buf, templ, static_cast<long long>(burn_iters));
  return json::Parse(buf).value();
}

server::ServerConfig FastServer() {
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  return config;
}

/// One server+client pair over either transport, torn down per measurement
/// so each run starts from a fresh registry.
struct Harness {
  // pipe transport
  std::unique_ptr<client::InProcessLaminar> pipe;
  // tcp transport
  std::unique_ptr<client::TcpLaminarServer> tcp_server;
  std::unique_ptr<client::TcpClient> tcp_client;

  client::LaminarClient& client() {
    return pipe ? *pipe->client : *tcp_client->client;
  }
  ~Harness() {
    tcp_client.reset();  // close the socket before stopping the listener
    if (tcp_server) tcp_server->listener->Stop();
  }
};

std::unique_ptr<Harness> MakeHarness(bool tcp) {
  auto h = std::make_unique<Harness>();
  if (!tcp) {
    h->pipe = std::make_unique<client::InProcessLaminar>(
        client::ConnectInProcess(FastServer()));
    return h;
  }
  Result<client::TcpLaminarServer> srv = client::ServeTcp(FastServer());
  if (!srv.ok()) {
    std::fprintf(stderr, "ServeTcp: %s\n", srv.status().ToString().c_str());
    std::exit(1);
  }
  h->tcp_server =
      std::make_unique<client::TcpLaminarServer>(std::move(srv.value()));
  Result<client::TcpClient> cli =
      client::ConnectTcp("127.0.0.1", h->tcp_server->port());
  if (!cli.ok()) {
    std::fprintf(stderr, "ConnectTcp: %s\n", cli.status().ToString().c_str());
    std::exit(1);
  }
  h->tcp_client = std::make_unique<client::TcpClient>(std::move(cli.value()));
  return h;
}

// Seeded PE corpus: varied themed descriptions so semantic search has real
// work to do, varied code so registrations are not cache hits.
const char* kThemes[] = {
    "detects anomalies in a numeric stream",
    "computes a running average over a sliding window",
    "filters tuples below a configurable threshold",
    "joins two keyed streams on a session identifier",
    "parses json payloads into typed records",
    "deduplicates events by content hash",
};

std::string PeCode(int i) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "class BenchPe%d(IterativePE):\n"
                "    def _process(self, v):\n"
                "        return v * %d + %d\n",
                i, i % 7 + 1, i);
  return buf;
}

std::string PeDescription(int i) {
  std::string d = kThemes[i % std::size(kThemes)];
  d += " variant ";
  d += std::to_string(i);
  return d;
}

double Percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  size_t idx = static_cast<size_t>(q * (sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

struct MixResult {
  size_t ops = 0;
  size_t search_hits = 0;  // parity: total hits across all searches
  double qps = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  uint64_t frames = 0;       // protocol frames written (both endpoints)
  uint64_t frame_bytes = 0;  // protocol bytes inside those frames
};

/// Seeds `seed_pes` PEs, then drives `ops` operations at a 90/10
/// search/register split, measuring per-op latency client-side.
MixResult RunMix(client::LaminarClient& client, int seed_pes, int ops) {
  auto& reg = telemetry::MetricsRegistry::Global();
  telemetry::Counter& frames = reg.GetCounter("laminar_net_frames_written_total");
  telemetry::Counter& frame_bytes = reg.GetCounter("laminar_net_frame_bytes_total");

  for (int i = 0; i < seed_pes; ++i) {
    Result<client::PeInfo> pe =
        client.RegisterPe(PeCode(i), "", PeDescription(i));
    if (!pe.ok()) {
      std::fprintf(stderr, "seed register: %s\n",
                   pe.status().ToString().c_str());
      std::exit(1);
    }
  }

  MixResult r;
  uint64_t frames0 = frames.Value();
  uint64_t bytes0 = frame_bytes.Value();
  std::vector<double> lat_ms;
  lat_ms.reserve(ops);
  Stopwatch wall;
  int next_pe = seed_pes;
  for (int i = 0; i < ops; ++i) {
    Stopwatch op;
    if (i % 10 == 9) {  // 10% registers
      Result<client::PeInfo> pe =
          client.RegisterPe(PeCode(next_pe), "", PeDescription(next_pe));
      ++next_pe;
      if (!pe.ok()) {
        std::fprintf(stderr, "mix register: %s\n",
                     pe.status().ToString().c_str());
        std::exit(1);
      }
    } else {  // 90% semantic searches
      Result<std::vector<client::SearchHit>> hits = client.SearchRegistrySemantic(
          kThemes[i % std::size(kThemes)], "pe", 5);
      if (!hits.ok()) {
        std::fprintf(stderr, "mix search: %s\n",
                     hits.status().ToString().c_str());
        std::exit(1);
      }
      r.search_hits += hits->size();
    }
    lat_ms.push_back(op.ElapsedMillis());
  }
  double secs = wall.ElapsedSeconds();
  r.ops = static_cast<size_t>(ops);
  r.qps = secs > 0 ? ops / secs : 0.0;
  std::sort(lat_ms.begin(), lat_ms.end());
  r.p50 = Percentile(lat_ms, 0.50);
  r.p95 = Percentile(lat_ms, 0.95);
  r.p99 = Percentile(lat_ms, 0.99);
  r.frames = frames.Value() - frames0;
  r.frame_bytes = frame_bytes.Value() - bytes0;
  return r;
}

struct StreamResult {
  double first_line_ms = 0.0;
  double total_ms = 0.0;
  size_t lines = 0;
};

StreamResult RunStream(client::LaminarClient& client, int tuples,
                       int64_t burn) {
  client::RunOutcome outcome =
      client.RunSpec(StreamSpec(burn), "simple", Value(tuples));
  if (!outcome.status.ok()) {
    std::fprintf(stderr, "stream run: %s\n",
                 outcome.status.ToString().c_str());
    std::exit(1);
  }
  return {outcome.first_line_ms, outcome.total_ms, outcome.lines.size()};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int kSeedPes = smoke ? 12 : 60;
  const int kOps = smoke ? 100 : 1000;
  const int kTuples = smoke ? 20 : 50;
  const int64_t kBurn = smoke ? 200'000 : 1'500'000;

  std::printf("== transport bench: in-memory pipe vs TCP loopback ==\n");
  std::printf("mix: %d ops (90%% semantic search / 10%% register) over %d "
              "seeded PEs; stream: %d tuples\n\n",
              kOps, kSeedPes, kTuples);
  std::printf("%-6s %-9s %-9s %-9s %-9s %-10s %-12s\n", "mode", "qps", "p50",
              "p95", "p99", "frames", "bytes/frame");

  bench::BenchReport report("transport");
  MixResult mix[2];
  StreamResult stream[2];
  const char* names[2] = {"pipe", "tcp"};
  for (int t = 0; t < 2; ++t) {
    std::unique_ptr<Harness> h = MakeHarness(/*tcp=*/t == 1);
    mix[t] = RunMix(h->client(), kSeedPes, kOps);
    stream[t] = RunStream(h->client(), kTuples, kBurn);
    double bpf = mix[t].frames ? double(mix[t].frame_bytes) / mix[t].frames : 0;
    std::printf("%-6s %-9.0f %-9.3f %-9.3f %-9.3f %-10llu %-12.1f\n",
                names[t], mix[t].qps, mix[t].p50, mix[t].p95, mix[t].p99,
                static_cast<unsigned long long>(mix[t].frames), bpf);
    Value& row = report.AddRow();
    row["transport"] = names[t];
    row["ops"] = static_cast<int64_t>(mix[t].ops);
    row["qps"] = mix[t].qps;
    row["p50_ms"] = mix[t].p50;
    row["p95_ms"] = mix[t].p95;
    row["p99_ms"] = mix[t].p99;
    row["frames"] = static_cast<int64_t>(mix[t].frames);
    row["bytes_per_frame"] = bpf;
    row["stream_first_line_ms"] = stream[t].first_line_ms;
    row["stream_total_ms"] = stream[t].total_ms;
    row["stream_lines"] = static_cast<int64_t>(stream[t].lines);
  }

  double ratio = mix[0].qps > 0 ? mix[1].qps / mix[0].qps : 0.0;
  std::printf("\nstreamed /execute (%d tuples):\n", kTuples);
  for (int t = 0; t < 2; ++t) {
    std::printf("  %-6s first-line %-9.2fms total %-9.2fms lines %zu\n",
                names[t], stream[t].first_line_ms, stream[t].total_ms,
                stream[t].lines);
  }
  std::printf("\ntcp/pipe QPS ratio on the 90/10 mix: %.2fx\n\n", ratio);
  report.Set("pipe_qps", mix[0].qps);
  report.Set("tcp_qps", mix[1].qps);
  report.Set("tcp_over_pipe_qps", ratio);
  bench::PrintHistogramSummary(
      "telemetry: socket + server latency percentiles",
      {{"laminar_net_io_ms", "op=\"read\""},
       {"laminar_net_io_ms", "op=\"write\""},
       {"laminar_server_request_ms", "path=\"/search/semantic\""}});
  report.AddHistogram("laminar_net_io_ms", "op=\"read\"");
  report.AddHistogram("laminar_net_io_ms", "op=\"write\"");
  report.AddHistogram("laminar_server_request_ms", "path=\"/search/semantic\"");
  report.Write();

  if (smoke) {
    // Parity + sanity gates (loose on purpose: the committed JSON carries
    // the real numbers; these only catch functional regressions and order-
    // of-magnitude transport collapses without flaking CI).
    bool ok = true;
    auto gate = [&](bool cond, const char* what) {
      if (!cond) {
        std::fprintf(stderr, "SMOKE GATE FAILED: %s\n", what);
        ok = false;
      }
    };
    gate(mix[0].search_hits > 0 && mix[1].search_hits > 0,
         "semantic search returned hits over both transports");
    gate(mix[0].search_hits == mix[1].search_hits,
         "identical search hit counts over both transports");
    gate(stream[0].lines == stream[1].lines,
         "identical streamed line counts over both transports");
    gate(stream[1].first_line_ms >= 0 &&
             stream[1].first_line_ms < stream[1].total_ms,
         "streamed /execute chunks arrive incrementally over TCP");
    gate(mix[1].qps >= mix[0].qps / 8.0,
         "TCP-loopback QPS within 8x of in-memory on the 90/10 mix");
    if (!ok) return 1;
    std::printf("smoke gates passed\n");
  }
  return 0;
}
