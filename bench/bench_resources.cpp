// Reproduces the §IV-F resource-management evaluation: Laminar 1.0 shipped
// the whole resources/ directory with every execution request; Laminar 2.0
// sends content-hash refs, uploads only what the engine is missing, and
// caches across runs.
//
// Measured: bytes on the wire and request latency per run, for (a) the 1.0
// behaviour (re-upload everything each run), (b) the 2.0 negotiation with a
// cold cache, and (c) the 2.0 negotiation with a warm cache.
#include <cstdio>

#include "bench_util.hpp"
#include "client/connect.hpp"
#include "client/demo_workflows.hpp"
#include "common/clock.hpp"

using namespace laminar;

int main() {
  std::printf("== §IV-F: resource transfer & caching ==\n\n");
  server::ServerConfig config;
  config.engine.cold_start_ms = 0;
  client::InProcessLaminar laminar = client::ConnectInProcess(config);
  client::LaminarClient& cli = *laminar.client;

  const client::DemoWorkflow* demo = client::FindDemoWorkflow("isprime_wf");
  Result<client::WorkflowInfo> wf =
      cli.RegisterWorkflow(demo->name, demo->spec, demo->pes, demo->code);
  if (!wf.ok()) {
    std::printf("setup failed: %s\n", wf.status().ToString().c_str());
    return 1;
  }

  // Three resources totalling ~5 MB, like a model file + config + data.
  std::vector<client::Resource> resources = {
      {"resources/model.bin", std::string(4 << 20, 'm')},
      {"resources/data.csv", std::string(1 << 20, 'd')},
      {"resources/config.json", R"({"threshold": 3.0})"},
  };
  uint64_t payload_bytes = 0;
  for (const auto& r : resources) payload_bytes += r.content.size();
  std::printf("resources: %zu files, %.2f MB total\n\n", resources.size(),
              static_cast<double>(payload_bytes) / (1 << 20));

  constexpr int kRuns = 5;
  std::printf("%-34s %-10s %-14s %-12s\n", "mode", "runs",
              "bytes/run (MB)", "ms/run");

  bench::BenchReport report("resources");
  report.Set("payload_mb", static_cast<double>(payload_bytes) / (1 << 20));
  auto measure = [&](const char* label, bool clear_cache_each_run,
                     bool always_upload, bool prime_cache = false) {
    laminar.server->engine().resource_cache().Clear();
    if (prime_cache) {
      // One untimed run to populate the cache: the warm row measures
      // steady-state behaviour, not the first upload.
      (void)cli.Run(wf->id, Value(1), nullptr, resources);
    }
    net::PipeCounters::Reset();
    Stopwatch watch;
    for (int i = 0; i < kRuns; ++i) {
      if (clear_cache_each_run) {
        laminar.server->engine().resource_cache().Clear();
      }
      if (always_upload) {
        // Laminar 1.0: the whole directory travels with every request.
        Status st = cli.UploadResources(resources);
        if (!st.ok()) std::printf("upload failed: %s\n", st.ToString().c_str());
      }
      client::RunOutcome outcome = cli.Run(wf->id, Value(5), nullptr,
                                           always_upload ? std::vector<client::Resource>{}
                                                         : resources);
      if (!outcome.status.ok()) {
        std::printf("run failed: %s\n", outcome.status.ToString().c_str());
      }
    }
    double mb_per_run = static_cast<double>(net::PipeCounters::BytesWritten()) /
                        kRuns / (1 << 20);
    double ms_per_run = watch.ElapsedMillis() / kRuns;
    std::printf("%-34s %-10d %-14.2f %-12.2f\n", label, kRuns, mb_per_run,
                ms_per_run);
    Value& row = report.AddRow();
    row["mode"] = label;
    row["mb_per_run"] = mb_per_run;
    row["ms_per_run"] = ms_per_run;
  };

  measure("1.0: serialize dir every request", /*clear=*/false,
          /*always_upload=*/true);
  measure("2.0: negotiate, cold cache each run", /*clear=*/true,
          /*always_upload=*/false);
  measure("2.0: negotiate, warm cache", /*clear=*/false,
          /*always_upload=*/false, /*prime_cache=*/true);

  auto stats = laminar.server->engine().resource_cache().stats();
  std::printf("\ncache stats: hits=%llu misses=%llu stored=%.2f MB\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<double>(stats.bytes_stored) / (1 << 20));
  std::printf(
      "\nexpected shape: the warm-cache row transfers ~zero payload bytes "
      "per run; the 1.0 row pays the full %.2f MB every run.\n\n",
      static_cast<double>(payload_bytes) / (1 << 20));
  bench::PrintHistogramSummary(
      "telemetry: server-side latency percentiles",
      {{"laminar_server_request_ms", "path=\"/execute\""},
       {"laminar_server_request_ms", "path=\"/resources/upload\""},
       {"laminar_engine_run_ms", ""},
       {"laminar_engine_cold_start_ms", ""}});
  report.Set("cache_hits", static_cast<int64_t>(stats.hits));
  report.Set("cache_misses", static_cast<int64_t>(stats.misses));
  report.AddHistogram("laminar_server_request_ms", "path=\"/execute\"");
  report.AddHistogram("laminar_server_request_ms",
                      "path=\"/resources/upload\"");
  report.AddHistogram("laminar_engine_run_ms");
  report.Write();
  return 0;
}
