// Reproduces Fig. 13: precision-recall for the ReACC-py-retriever baseline
// (Laminar 1.0's code-to-code search) at the same dropped-snippet levels as
// Fig. 12.
//
// The paper's shape: ReACC recalls near-identical code well (the 0% case,
// where the exact clone is in the index) but exhibits "a steeper precision
// decline as more results are retrieved and code is omitted"; best F1 ≈
// 0.24, roughly a third of Aroma's.
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "embed/reacc_sim.hpp"

using namespace laminar;

int main() {
  std::printf("== Fig. 13: precision-recall for ReACC-py retriever ==\n\n");
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(bench::DefaultCorpusConfig());
  std::printf("corpus: %zu PEs across %zu semantic groups\n\n", ds.size(),
              ds.family_count());

  embed::ReaccSim reacc;
  std::vector<embed::Vector> stored;
  stored.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    stored.push_back(reacc.EncodeCode(ex.pe_code));
  }

  std::vector<std::unordered_set<int64_t>> relevant =
      bench::GroupRelevance(ds);
  constexpr size_t kMaxK = 15;
  double best_overall = 0.0;
  bench::BenchReport report("fig13_reacc_pr");
  report.Set("corpus_size", static_cast<int64_t>(ds.size()));

  for (double drop : {0.0, 0.5, 0.75, 0.9}) {
    std::vector<std::vector<int64_t>> ranked;
    ranked.reserve(ds.size());
    Stopwatch query_watch;
    for (const dataset::PeExample& ex : ds.examples()) {
      std::string query_code = dataset::DropCode(ex.pe_code, drop);
      embed::Vector q = reacc.EncodeCode(query_code);
      std::vector<std::pair<double, int64_t>> scored;
      scored.reserve(ds.size());
      for (size_t i = 0; i < ds.size(); ++i) {
        scored.emplace_back(embed::Cosine(q, stored[i]), ds.example(i).id);
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      std::vector<int64_t> ids;
      for (size_t i = 0; i < kMaxK && i < scored.size(); ++i) {
        ids.push_back(scored[i].second);
      }
      ranked.push_back(std::move(ids));
    }
    double per_query_ms =
        query_watch.ElapsedMillis() / static_cast<double>(ds.size());
    auto curve = search::PrecisionRecallCurve(ranked, relevant, kMaxK);
    char title[128];
    std::snprintf(title, sizeof title,
                  "ReACC, %.0f%% of code dropped (%.2f ms/query)", drop * 100,
                  per_query_ms);
    bench::PrintPrCurve(title, curve);
    best_overall = std::max(best_overall, search::BestF1(curve).f1);
    char slug[32];
    std::snprintf(slug, sizeof slug, "drop_%d", static_cast<int>(drop * 100));
    bench::ReportPrCurve(report, slug, curve);
  }
  std::printf("max F1 across drop levels = %.4f (paper reference: 0.24)\n",
              best_overall);
  report.Set("best_f1", best_overall);
  report.Write();
  return 0;
}
