// Reproduces Fig. 12: precision-recall for Aroma structural code-to-code
// search at progressively dropped snippet sizes (0%, 50%, 75%, 90%).
//
// Protocol (paper §VII-D): every PE in the corpus is indexed; each PE is
// then used as a query with the given fraction of its body removed, and the
// ranked results are scored against the PE's semantic group. The paper's
// shape: Aroma stays high-precision with full snippets AND with 50-75%
// dropped, only degrading substantially at 90%; best F1 ≈ 0.63.
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "spt/recommend.hpp"

using namespace laminar;

int main() {
  std::printf("== Fig. 12: precision-recall for Aroma (SPT structural search) ==\n\n");
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(bench::DefaultCorpusConfig());
  std::printf("corpus: %zu PEs across %zu semantic groups\n\n", ds.size(),
              ds.family_count());

  spt::AromaEngine engine;
  Stopwatch index_watch;
  for (const dataset::PeExample& ex : ds.examples()) {
    Status st = engine.AddSnippet(ex.id, ex.pe_code);
    if (!st.ok()) {
      std::printf("index failure for %s: %s\n", ex.name.c_str(),
                  st.ToString().c_str());
      return 1;
    }
  }
  std::printf("indexed in %.1f ms (%zu snippets)\n\n",
              index_watch.ElapsedMillis(), engine.size());

  std::vector<std::unordered_set<int64_t>> relevant =
      bench::GroupRelevance(ds);
  constexpr size_t kMaxK = 15;
  double best_overall = 0.0;
  bench::BenchReport report("fig12_aroma_pr");
  report.Set("corpus_size", static_cast<int64_t>(ds.size()));
  report.Set("index_ms", index_watch.ElapsedMillis());

  for (double drop : {0.0, 0.5, 0.75, 0.9}) {
    std::vector<std::vector<int64_t>> ranked;
    ranked.reserve(ds.size());
    Stopwatch query_watch;
    for (const dataset::PeExample& ex : ds.examples()) {
      std::string query = dataset::DropCode(ex.pe_code, drop);
      Result<std::vector<spt::SptIndex::Hit>> hits =
          engine.Search(query, kMaxK, spt::Metric::kOverlap);
      std::vector<int64_t> ids;
      if (hits.ok()) {
        for (const auto& hit : hits.value()) ids.push_back(hit.doc_id);
      }
      ranked.push_back(std::move(ids));
    }
    double per_query_ms =
        query_watch.ElapsedMillis() / static_cast<double>(ds.size());
    auto curve = search::PrecisionRecallCurve(ranked, relevant, kMaxK);
    char title[128];
    std::snprintf(title, sizeof title,
                  "Aroma, %.0f%% of code dropped (%.2f ms/query)", drop * 100,
                  per_query_ms);
    bench::PrintPrCurve(title, curve);
    best_overall = std::max(best_overall, search::BestF1(curve).f1);
    char slug[32];
    std::snprintf(slug, sizeof slug, "drop_%d", static_cast<int>(drop * 100));
    bench::ReportPrCurve(report, slug, curve);
  }
  std::printf("max F1 across drop levels = %.4f (paper reference: 0.63)\n",
              best_overall);
  report.Set("best_f1", best_overall);
  report.Write();
  return 0;
}
