// Ablation of the §VI-A design choices DESIGN.md calls out:
//
//  1. Laminar's simplified scoring (cosine over SPT features, no
//     prune/rerank/cluster) vs the full Aroma pipeline — the paper argues
//     the simplification trades little quality "for efficiency, simplicity,
//     and scalability".
//  2. Variable-name generalization (#VAR) on vs off — the property that
//     makes structural search rename-robust.
//
// Quality metric: fraction of top-5 results in the query's semantic group,
// for 50%-dropped queries; latency per query reported alongside.
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "spt/recommend.hpp"

using namespace laminar;

namespace {

struct Outcome {
  double family_precision_at5 = 0.0;
  double ms_per_query = 0.0;
};

Outcome Evaluate(const dataset::CodeSearchNetPeDataset& ds,
                 const spt::AromaConfig& config, double drop) {
  spt::AromaEngine engine(config);
  for (const dataset::PeExample& ex : ds.examples()) {
    (void)engine.AddSnippet(ex.id, ex.pe_code);
  }
  Stopwatch watch;
  double precision_sum = 0.0;
  size_t queries = 0;
  for (const dataset::PeExample& ex : ds.examples()) {
    std::string query = dataset::DropCode(ex.pe_code, drop);
    // Use the raw ranked search for both modes so precision is comparable
    // (the full pipeline's clustering intentionally dedups the family).
    Result<std::vector<spt::SptIndex::Hit>> hits = engine.Search(
        query, 5,
        config.use_full_pipeline ? spt::Metric::kOverlap
                                 : config.simplified_metric);
    if (!hits.ok()) continue;
    const std::vector<int64_t>& members = ds.GroupMembers(ex.group);
    size_t in_family = 0;
    for (const auto& hit : hits.value()) {
      for (int64_t m : members) {
        if (hit.doc_id == m) {
          ++in_family;
          break;
        }
      }
    }
    precision_sum +=
        static_cast<double>(in_family) /
        static_cast<double>(std::max<size_t>(hits->size(), 1));
    ++queries;
  }
  Outcome out;
  out.family_precision_at5 =
      queries > 0 ? precision_sum / static_cast<double>(queries) : 0.0;
  out.ms_per_query =
      queries > 0 ? watch.ElapsedMillis() / static_cast<double>(queries) : 0.0;
  return out;
}

Outcome EvaluateRecommend(const dataset::CodeSearchNetPeDataset& ds,
                          const spt::AromaConfig& config, double drop) {
  spt::AromaEngine engine(config);
  for (const dataset::PeExample& ex : ds.examples()) {
    (void)engine.AddSnippet(ex.id, ex.pe_code);
  }
  Stopwatch watch;
  double top1_sum = 0.0;
  size_t queries = 0;
  for (const dataset::PeExample& ex : ds.examples()) {
    std::string query = dataset::DropCode(ex.pe_code, drop);
    Result<std::vector<spt::Recommendation>> recs = engine.Recommend(query);
    if (!recs.ok() || recs->empty()) {
      ++queries;
      continue;
    }
    const std::vector<int64_t>& members = ds.GroupMembers(ex.group);
    for (int64_t m : members) {
      if (recs->front().snippet_id == m) {
        top1_sum += 1.0;
        break;
      }
    }
    ++queries;
  }
  Outcome out;
  out.family_precision_at5 =
      queries > 0 ? top1_sum / static_cast<double>(queries) : 0.0;
  out.ms_per_query =
      queries > 0 ? watch.ElapsedMillis() / static_cast<double>(queries) : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("== Aroma ablations (§VI-A design choices) ==\n\n");
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(bench::DefaultCorpusConfig());
  std::printf("corpus: %zu PEs, queries with 50%% of code dropped\n\n",
              ds.size());
  bench::BenchReport report("aroma_ablation");
  report.Set("corpus_size", static_cast<int64_t>(ds.size()));
  auto record = [&report](const char* section, const char* config_name,
                          const Outcome& o) {
    Value& row = report.AddRow();
    row["section"] = section;
    row["config"] = config_name;
    row["quality"] = o.family_precision_at5;
    row["ms_per_query"] = o.ms_per_query;
  };

  // 1. Scoring path ablation.
  std::printf("scoring path (raw ranked retrieval, family precision@5):\n");
  std::printf("  %-40s %-14s %-12s\n", "configuration", "precision@5",
              "ms/query");
  {
    spt::AromaConfig full;
    full.use_full_pipeline = true;
    Outcome o = Evaluate(ds, full, 0.5);
    std::printf("  %-40s %-14.4f %-12.3f\n", "overlap scoring (Aroma stage 2)",
                o.family_precision_at5, o.ms_per_query);
    record("scoring", "overlap", o);
  }
  {
    spt::AromaConfig simplified;
    simplified.use_full_pipeline = false;
    simplified.simplified_metric = spt::Metric::kCosine;
    Outcome o = Evaluate(ds, simplified, 0.5);
    std::printf("  %-40s %-14.4f %-12.3f\n",
                "cosine scoring (Laminar 2.0 default)",
                o.family_precision_at5, o.ms_per_query);
    record("scoring", "cosine", o);
  }

  // 2. End-to-end recommendation: full pipeline vs simplified.
  std::printf("\nend-to-end recommendation (top-1 in-family rate):\n");
  std::printf("  %-40s %-14s %-12s\n", "configuration", "top-1 rate",
              "ms/query");
  {
    spt::AromaConfig full;
    full.use_full_pipeline = true;
    Outcome o = EvaluateRecommend(ds, full, 0.5);
    std::printf("  %-40s %-14.4f %-12.3f\n",
                "full Aroma (prune+rerank+cluster)", o.family_precision_at5,
                o.ms_per_query);
    record("recommend", "full_pipeline", o);
  }
  {
    spt::AromaConfig simplified;
    simplified.use_full_pipeline = false;
    Outcome o = EvaluateRecommend(ds, simplified, 0.5);
    std::printf("  %-40s %-14.4f %-12.3f\n", "simplified (cosine only)",
                o.family_precision_at5, o.ms_per_query);
    record("recommend", "simplified", o);
  }

  // 3. Variable generalization ablation.
  std::printf("\nvariable-name generalization (#VAR):\n");
  std::printf("  %-40s %-14s %-12s\n", "configuration", "precision@5",
              "ms/query");
  for (bool generalize : {true, false}) {
    spt::AromaConfig config;
    config.features.generalize_variables = generalize;
    Outcome o = Evaluate(ds, config, 0.5);
    std::printf("  %-40s %-14.4f %-12.3f\n",
                generalize ? "generalized (#VAR, Aroma behaviour)"
                           : "verbatim identifiers (ablated)",
                o.family_precision_at5, o.ms_per_query);
    record("var_generalization", generalize ? "generalized" : "verbatim", o);
  }
  std::printf(
      "\nexpected shape: cosine tracks overlap closely at lower cost; the "
      "full pipeline wins on top-1 via pruning; disabling #VAR collapses "
      "precision on renamed variants.\n");
  report.Write();
  return 0;
}
