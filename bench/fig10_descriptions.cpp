// Reproduces Fig. 10: quality of CodeT5-generated PE descriptions from two
// code contexts — the _process() method only (Laminar 1.0, Fig. 10a) vs the
// full PE class (Laminar 2.0, Fig. 10b).
//
// The paper shows examples; we quantify the contrast with a token-overlap
// F1 between the generated description and the ground-truth description of
// each corpus PE, plus the downstream effect: semantic-search MRR when the
// registry embeds the generated descriptions.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "embed/codet5_sim.hpp"
#include "embed/unixcoder_sim.hpp"

using namespace laminar;

namespace {

/// Token-level F1 of generated vs reference description.
double TokenF1(const std::string& generated, const std::string& reference) {
  std::vector<std::string> g = strings::WordTokens(generated);
  std::vector<std::string> r = strings::WordTokens(reference);
  if (g.empty() || r.empty()) return 0.0;
  std::unordered_map<std::string, int> ref_counts;
  for (const std::string& t : r) ++ref_counts[t];
  int hits = 0;
  for (const std::string& t : g) {
    auto it = ref_counts.find(t);
    if (it != ref_counts.end() && it->second > 0) {
      ++hits;
      --it->second;
    }
  }
  double precision = static_cast<double>(hits) / static_cast<double>(g.size());
  double recall = static_cast<double>(hits) / static_cast<double>(r.size());
  return precision + recall > 0 ? 2 * precision * recall / (precision + recall)
                                : 0.0;
}

double SearchMrr(const dataset::CodeSearchNetPeDataset& ds,
                 embed::DescriptionContext context) {
  embed::CodeT5Sim codet5;
  embed::UnixcoderSim unixcoder;
  std::vector<embed::Vector> stored;
  stored.reserve(ds.size());
  for (const dataset::PeExample& ex : ds.examples()) {
    stored.push_back(
        unixcoder.EncodeText(codet5.Summarize(ex.pe_code, context)));
  }
  std::vector<std::vector<int64_t>> ranked;
  for (const dataset::PeExample& ex : ds.examples()) {
    embed::Vector q = unixcoder.EncodeText(ex.query);
    std::vector<std::pair<double, int64_t>> scored;
    for (size_t i = 0; i < ds.size(); ++i) {
      scored.emplace_back(embed::Cosine(q, stored[i]), ds.example(i).id);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    std::vector<int64_t> ids;
    for (size_t i = 0; i < 10 && i < scored.size(); ++i) {
      ids.push_back(scored[i].second);
    }
    ranked.push_back(std::move(ids));
  }
  return search::MeanReciprocalRank(ranked, bench::GroupRelevance(ds));
}

}  // namespace

int main() {
  std::printf("== Fig. 10: description generation from different code contexts ==\n\n");
  bench::BenchReport report("fig10_descriptions");
  dataset::CodeSearchNetPeDataset ds =
      dataset::CodeSearchNetPeDataset::Generate(bench::DefaultCorpusConfig());
  embed::CodeT5Sim codet5;

  double f1_process = 0.0, f1_full = 0.0;
  for (const dataset::PeExample& ex : ds.examples()) {
    f1_process += TokenF1(
        codet5.Summarize(ex.pe_code,
                         embed::DescriptionContext::kProcessMethodOnly),
        ex.description);
    f1_full += TokenF1(
        codet5.Summarize(ex.pe_code, embed::DescriptionContext::kFullClass),
        ex.description);
  }
  f1_process /= static_cast<double>(ds.size());
  f1_full /= static_cast<double>(ds.size());

  std::printf("description quality (token F1 vs ground-truth description):\n");
  std::printf("  %-36s %.4f\n", "_process() only (Laminar 1.0, 10a):",
              f1_process);
  std::printf("  %-36s %.4f\n", "full PE class (Laminar 2.0, 10b):", f1_full);
  std::printf("  improvement: %.2fx\n\n",
              f1_process > 0 ? f1_full / f1_process : 0.0);

  std::printf("downstream semantic-search MRR with generated descriptions:\n");
  double mrr_process =
      SearchMrr(ds, embed::DescriptionContext::kProcessMethodOnly);
  double mrr_full = SearchMrr(ds, embed::DescriptionContext::kFullClass);
  std::printf("  %-36s %.4f\n", "_process() only:", mrr_process);
  std::printf("  %-36s %.4f\n", "full PE class:", mrr_full);

  report.Set("corpus_size", static_cast<int64_t>(ds.size()));
  report.Set("token_f1_process_only", f1_process);
  report.Set("token_f1_full_class", f1_full);
  report.Set("mrr_process_only", mrr_process);
  report.Set("mrr_full_class", mrr_full);
  report.Write();

  // Show the paper's qualitative contrast on the IsPrime example.
  const char* isprime =
      "class IsPrime(IterativePE):\n"
      "    def __init__(self):\n"
      "        IterativePE.__init__(self)\n"
      "    def _process(self, num):\n"
      "        if all(num % i != 0 for i in range(2, num)):\n"
      "            return num\n";
  std::printf("\nexample (IsPrime):\n");
  std::printf("  10a (_process only): %s\n",
              codet5.Summarize(isprime,
                               embed::DescriptionContext::kProcessMethodOnly)
                  .c_str());
  std::printf("  10b (full class):    %s\n",
              codet5.Summarize(isprime, embed::DescriptionContext::kFullClass)
                  .c_str());
  return 0;
}
