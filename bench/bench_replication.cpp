// Read-replica scaling bench (ISSUE 9 headline): one WAL-shipping leader
// plus 0/1/2/4 followers, driven by closed-loop clients running the paper's
// read-heavy registry workload — 90% semantic search, 10% PE registration —
// through the client-side fan-out (ReplicaSetClient).
//
// Every node carries the same per-tenant admission cap (ServerConfig::
// tenant_quotas.requests_per_sec, i.e. `laminar_serve --rps`), which models
// a fixed per-node serving capacity: on a single physical machine the nodes
// cannot scale raw CPU, but the *admitted* read throughput scales with the
// number of read endpoints exactly as capacity-limited nodes would. Drivers
// are closed-loop and treat each 429 as a back-off-and-retry, so measured
// QPS is the admission ceiling, not the offered load.
//
// Headline table: aggregate admitted read QPS vs follower count plus the
// speedup over the leader-only baseline; replication lag p50/p99 (follower
// apply-time lag from laminar_repl_lag_ms) closes the report.
//
// --smoke replaces the load matrix with the correctness gate the ctest
// `repl` label runs: leader + 1 follower, a seeded corpus, a short mixed
// burst through the fan-out, and a bit-identical search parity check
// (ids, order, scores) between leader and follower at quiesce.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "client/connect.hpp"
#include "client/fanout.hpp"
#include "telemetry/telemetry.hpp"

using namespace laminar;

namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string PeCode(const std::string& cls) {
  return "class " + cls + ":\n    def process(self, x):\n        return x\n";
}

/// Description variants keep the seeded corpus semantically spread, so the
/// search queries below have distinct best matches.
const char* kDescriptions[] = {
    "reads tuples from an input stream",
    "filters tuples by a user predicate",
    "aggregates a sliding window of numbers",
    "writes tuples to an external sink",
    "joins two keyed tuple streams",
    "deduplicates tuples by content hash",
};

const char* kQueries[] = {
    "read tuples from a stream",
    "filter tuples with a predicate",
    "aggregate a window",
    "write results to a sink",
};

Result<client::TcpLaminarServer> StartLeader(const std::string& wal,
                                             const std::string& snapshot,
                                             double rps) {
  server::ServerConfig config;
  config.wal_path = wal;
  config.snapshot_path = snapshot;
  config.tenant_quotas.requests_per_sec = rps;
  config.tenant_quotas.burst = rps;
  net::TcpListenerConfig listener;
  listener.port = 0;
  return client::ServeTcp(std::move(config), listener);
}

Result<client::TcpLaminarServer> StartFollower(uint16_t leader_port,
                                               double rps) {
  server::ServerConfig config;
  config.replica_of = "127.0.0.1:" + std::to_string(leader_port);
  config.tenant_quotas.requests_per_sec = rps;
  config.tenant_quotas.burst = rps;
  net::TcpListenerConfig listener;
  listener.port = 0;
  return client::ServeTcp(std::move(config), listener);
}

/// Seeds `count` PEs on the leader (retrying through its own rate cap).
Status SeedCorpus(client::LaminarClient& leader, int count, int name_base) {
  for (int i = 0; i < count; ++i) {
    const std::string name = "Seed" + std::to_string(name_base + i);
    while (true) {
      Result<client::PeInfo> pe = leader.RegisterPe(
          PeCode(name), name, kDescriptions[i % std::size(kDescriptions)]);
      if (pe.ok()) break;
      if (pe.status().code() != StatusCode::kResourceExhausted) {
        return pe.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return Status::Ok();
}

/// Shared driver counters; main samples them at window edges, so the warmup
/// (token-bucket burst drain) never pollutes the measured rate.
struct DriveCounters {
  std::atomic<long> reads_ok{0};
  std::atomic<long> reads_throttled{0};
  std::atomic<long> writes_ok{0};
  std::atomic<long> writes_throttled{0};
  std::atomic<long> errors{0};
};

/// One closed-loop worker: 90% semantic search through the replica set,
/// 10% registration on the leader. A 429 from either side is a clean
/// back-off-and-retry; anything else counts as an error.
void DriveMixed(client::ReplicaSetClient& set, std::atomic<bool>& stop,
                DriveCounters& counters, int worker) {
  long i = 0;
  while (!stop.load(std::memory_order_acquire)) {
    if (i % 10 == 9) {
      const std::string name =
          "Live" + std::to_string(worker) + "_" + std::to_string(i);
      Result<client::PeInfo> pe = set.leader().RegisterPe(
          PeCode(name), name, kDescriptions[i % std::size(kDescriptions)]);
      if (pe.ok()) {
        counters.writes_ok.fetch_add(1, std::memory_order_relaxed);
      } else if (pe.status().code() == StatusCode::kResourceExhausted) {
        counters.writes_throttled.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;  // retry the write slot before advancing the mix
      } else {
        counters.errors.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "write error: %s\n",
                     pe.status().ToString().c_str());
      }
    } else {
      const char* query = kQueries[i % std::size(kQueries)];
      Result<std::vector<client::SearchHit>> hits =
          set.Read<std::vector<client::SearchHit>>(
              [query](client::LaminarClient& c) {
                return c.SearchRegistrySemantic(query);
              });
      if (hits.ok()) {
        counters.reads_ok.fetch_add(1, std::memory_order_relaxed);
      } else if (hits.status().code() == StatusCode::kResourceExhausted) {
        counters.reads_throttled.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;  // retry the read before advancing the mix
      } else {
        counters.errors.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "read error: %s\n",
                     hits.status().ToString().c_str());
      }
    }
    ++i;
  }
}

/// Runs one search, riding out 429s (the parity probe follows right after
/// the drive window, when every node's token bucket is freshly drained).
template <typename Op>
Result<std::vector<client::SearchHit>> SearchRetrying(Op op) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (true) {
    Result<std::vector<client::SearchHit>> hits = op();
    if (hits.ok() ||
        hits.status().code() != StatusCode::kResourceExhausted ||
        std::chrono::steady_clock::now() >= deadline) {
      return hits;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Bit-identical search parity between two nodes at quiesce: same hit
/// count, same ids in the same order, same scores — for both the semantic
/// and the literal path. Prints every divergence it finds.
bool SearchParity(client::LaminarClient& leader,
                  client::LaminarClient& follower) {
  bool ok = true;
  auto compare = [&](const char* kind, const std::string& term,
                     Result<std::vector<client::SearchHit>> a,
                     Result<std::vector<client::SearchHit>> b) {
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "parity: %s '%s' failed: leader=%s follower=%s\n",
                   kind, term.c_str(), a.status().ToString().c_str(),
                   b.status().ToString().c_str());
      ok = false;
      return;
    }
    if (a->size() != b->size()) {
      std::fprintf(stderr, "parity: %s '%s' size %zu vs %zu\n", kind,
                   term.c_str(), a->size(), b->size());
      ok = false;
      return;
    }
    for (size_t i = 0; i < a->size(); ++i) {
      if ((*a)[i].id != (*b)[i].id || (*a)[i].score != (*b)[i].score) {
        std::fprintf(stderr,
                     "parity: %s '%s' hit %zu diverges: "
                     "id %lld/%lld score %.17g/%.17g\n",
                     kind, term.c_str(), i,
                     static_cast<long long>((*a)[i].id),
                     static_cast<long long>((*b)[i].id), (*a)[i].score,
                     (*b)[i].score);
        ok = false;
      }
    }
  };
  for (const char* query : kQueries) {
    compare(
        "semantic", query,
        SearchRetrying([&] { return leader.SearchRegistrySemantic(query); }),
        SearchRetrying(
            [&] { return follower.SearchRegistrySemantic(query); }));
  }
  for (const char* term : {"Seed", "tuples", "process"}) {
    compare(
        "literal", term,
        SearchRetrying([&] { return leader.SearchRegistryLiteral(term); }),
        SearchRetrying([&] { return follower.SearchRegistryLiteral(term); }));
  }
  return ok;
}

struct ScenarioResult {
  int followers = 0;
  double read_qps = 0.0;
  double write_qps = 0.0;
  long reads_ok = 0;
  long reads_throttled = 0;
  long writes_ok = 0;
  long writes_throttled = 0;
  long errors = 0;
  double quiesce_lag_ms = 0.0;  ///< max follower lagMs after catch-up
  bool parity = true;
};

/// One matrix row: fresh leader + `followers` replicas, seeded corpus,
/// warmup + measured drive window, then quiesce + parity check.
ScenarioResult RunScenario(int followers, double node_rps, int threads,
                           int warmup_ms, int measure_ms, int seed_base) {
  ScenarioResult result;
  result.followers = followers;

  const std::string wal = TempPath("laminar_bench_repl_wal.jsonl");
  const std::string snapshot = TempPath("laminar_bench_repl_snap.json");
  fs::remove(wal);
  fs::remove(snapshot);

  Result<client::TcpLaminarServer> leader =
      StartLeader(wal, snapshot, node_rps);
  if (!leader.ok()) {
    std::fprintf(stderr, "leader start: %s\n",
                 leader.status().ToString().c_str());
    result.errors = 1;
    return result;
  }
  std::vector<client::TcpLaminarServer> replicas;
  std::vector<std::string> follower_specs;
  for (int i = 0; i < followers; ++i) {
    Result<client::TcpLaminarServer> f =
        StartFollower(leader->port(), node_rps);
    if (!f.ok()) {
      std::fprintf(stderr, "follower start: %s\n",
                   f.status().ToString().c_str());
      result.errors = 1;
      return result;
    }
    follower_specs.push_back("127.0.0.1:" + std::to_string(f->port()));
    replicas.push_back(std::move(f.value()));
  }

  const std::string leader_spec =
      "127.0.0.1:" + std::to_string(leader->port());
  Result<std::unique_ptr<client::ReplicaSetClient>> set =
      client::ReplicaSetClient::Connect(leader_spec, follower_specs);
  if (!set.ok()) {
    std::fprintf(stderr, "replica set connect: %s\n",
                 set.status().ToString().c_str());
    result.errors = 1;
    return result;
  }

  if (Status seeded = SeedCorpus((*set)->leader(), 24, seed_base);
      !seeded.ok()) {
    std::fprintf(stderr, "seed: %s\n", seeded.ToString().c_str());
    result.errors = 1;
    return result;
  }
  if (Status caught = (*set)->WaitForCatchUp(15'000); !caught.ok()) {
    std::fprintf(stderr, "catch-up: %s\n", caught.ToString().c_str());
    result.errors = 1;
    return result;
  }

  // Drive: sample the counters at both window edges, so the measured rate
  // excludes the warmup (which drains each node's initial token burst).
  DriveCounters counters;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(
        [&, t] { DriveMixed(**set, stop, counters, t); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));
  const long reads0 = counters.reads_ok.load();
  const long writes0 = counters.writes_ok.load();
  Stopwatch window;
  std::this_thread::sleep_for(std::chrono::milliseconds(measure_ms));
  const long reads1 = counters.reads_ok.load();
  const long writes1 = counters.writes_ok.load();
  const double secs = window.ElapsedSeconds();
  stop.store(true, std::memory_order_release);
  for (std::thread& w : workers) w.join();

  result.read_qps = secs > 0 ? (reads1 - reads0) / secs : 0.0;
  result.write_qps = secs > 0 ? (writes1 - writes0) / secs : 0.0;
  result.reads_ok = counters.reads_ok.load();
  result.reads_throttled = counters.reads_throttled.load();
  result.writes_ok = counters.writes_ok.load();
  result.writes_throttled = counters.writes_throttled.load();
  result.errors = counters.errors.load();

  // Quiesce: wait for every follower to confirm the final head, then gate
  // parity against the first follower (all apply the same stream).
  if (!replicas.empty()) {
    if (Status caught = (*set)->WaitForCatchUp(15'000); !caught.ok()) {
      std::fprintf(stderr, "quiesce catch-up: %s\n",
                   caught.ToString().c_str());
      result.errors += 1;
      return result;
    }
    Result<client::TcpClient> follower_cli =
        client::ConnectTcp("127.0.0.1", replicas.front().port());
    if (follower_cli.ok()) {
      result.parity =
          SearchParity((*set)->leader(), *follower_cli->client);
      Result<Value> status = follower_cli->client->ReplicationStatus();
      if (status.ok()) {
        result.quiesce_lag_ms = status->GetDouble("lagMs", 0.0);
      }
    } else {
      result.parity = false;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  // Per-node admission cap: well below one core's search throughput, so
  // every node is capacity-limited and aggregate QPS is governed by the
  // number of read endpoints (the quantity under test), not by how much
  // CPU this particular machine happens to have. Smoke mode is a pure
  // correctness gate (parity after a mixed burst), so it runs uncapped —
  // the 429 contract itself is bench_tenant's gate.
  const double kNodeRps = smoke ? 0.0 : 60.0;
  const int kThreads = 6;
  const int kWarmupMs = smoke ? 100 : 1200;
  const int kMeasureMs = smoke ? 400 : 2500;
  const std::vector<int> follower_counts =
      smoke ? std::vector<int>{1} : std::vector<int>{0, 1, 2, 4};

  std::printf("== read-replica scaling bench: leader + N followers ==\n");
  std::printf(
      "per-node cap: %.0f rps (0 = uncapped), drivers: %d closed-loop "
      "threads, mix: 90%% semantic search / 10%% register, window: %d ms\n\n",
      kNodeRps, kThreads, kMeasureMs);

  bench::BenchReport report("replication");
  report.Set("node_rps_cap", kNodeRps);
  report.Set("driver_threads", static_cast<int64_t>(kThreads));
  report.Set("measure_ms", static_cast<int64_t>(kMeasureMs));

  std::printf("  %-10s %-12s %-10s %-12s %-12s %-8s\n", "followers",
              "read_qps", "speedup", "throttled", "write_qps", "parity");
  double baseline_qps = 0.0;
  bool all_parity = true;
  long total_errors = 0;
  std::vector<ScenarioResult> rows;
  int seed_base = 0;
  for (int followers : follower_counts) {
    ScenarioResult r = RunScenario(followers, kNodeRps, kThreads, kWarmupMs,
                                   kMeasureMs, seed_base);
    seed_base += 1000;
    if (followers == 0) baseline_qps = r.read_qps;
    const double speedup =
        baseline_qps > 0 ? r.read_qps / baseline_qps : 0.0;
    std::printf("  %-10d %-12.1f %-10.2f %-12ld %-12.1f %-8s\n", followers,
                r.read_qps, speedup, r.reads_throttled, r.write_qps,
                r.parity ? "ok" : "DIVERGED");
    all_parity = all_parity && r.parity;
    total_errors += r.errors;

    Value& row = report.AddRow();
    row["followers"] = static_cast<int64_t>(followers);
    row["read_qps"] = r.read_qps;
    row["write_qps"] = r.write_qps;
    row["speedup_vs_leader_only"] = speedup;
    row["reads_admitted"] = static_cast<int64_t>(r.reads_ok);
    row["reads_throttled"] = static_cast<int64_t>(r.reads_throttled);
    row["writes_admitted"] = static_cast<int64_t>(r.writes_ok);
    row["writes_throttled"] = static_cast<int64_t>(r.writes_throttled);
    row["errors"] = static_cast<int64_t>(r.errors);
    row["quiesce_lag_ms"] = r.quiesce_lag_ms;
    row["parity"] = r.parity;
    rows.push_back(r);
  }
  std::printf("\n");

  // Replication lag across the whole run: follower-side apply lag
  // (leader append wall time -> follower apply wall time, long-poll
  // shipping cadence included).
  bench::PrintHistogramSummary("replication lag (append -> apply)",
                               {{"laminar_repl_lag_ms", ""}});
  report.AddHistogram("laminar_repl_lag_ms");
  const telemetry::Histogram* lag =
      telemetry::MetricsRegistry::Global().FindHistogram(
          "laminar_repl_lag_ms", "");
  if (lag != nullptr) {
    telemetry::Histogram::Snapshot s = lag->snapshot();
    if (s.count > 0) {
      report.Set("lag_p50_ms", s.Percentile(0.50));
      report.Set("lag_p99_ms", s.Percentile(0.99));
    }
  }
  if (!smoke) {
    report.Set("leader_only_read_qps", baseline_qps);
    for (const ScenarioResult& r : rows) {
      if (r.followers == 2 && baseline_qps > 0) {
        report.Set("speedup_2_followers", r.read_qps / baseline_qps);
      }
      if (r.followers == 4 && baseline_qps > 0) {
        report.Set("speedup_4_followers", r.read_qps / baseline_qps);
      }
    }
  }
  report.Write();

  bool ok = true;
  auto gate = [&](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ok = false;
    }
  };
  // Correctness gates run in both modes: followers must serve bit-identical
  // search results at quiesce, and nothing may fail with anything dirtier
  // than a clean 429.
  gate(all_parity, "follower search results bit-identical to leader");
  gate(total_errors == 0, "no driver op failed outside the 429 contract");
  if (smoke) {
    const ScenarioResult& r = rows.front();
    gate(r.reads_ok > 0, "mixed burst admitted reads through the fan-out");
    gate(r.writes_ok > 0, "mixed burst admitted writes on the leader");
  } else {
    // Scaling gates (the ISSUE 9 acceptance bar): admitted read throughput
    // must scale with the replica count under fixed per-node capacity.
    for (const ScenarioResult& r : rows) {
      const double speedup =
          baseline_qps > 0 ? r.read_qps / baseline_qps : 0.0;
      if (r.followers == 2) {
        gate(speedup >= 1.7, "2 followers reach >= 1.7x leader-only QPS");
      }
      if (r.followers == 4) {
        gate(speedup >= 3.0, "4 followers reach >= 3.0x leader-only QPS");
      }
    }
  }
  if (!ok) return 1;
  std::printf("%s gates passed\n", smoke ? "smoke" : "scaling");
  return 0;
}
